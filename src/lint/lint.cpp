#include "lint/lint.hpp"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "common/strings.hpp"
#include "lint/collectives.hpp"
#include "lint/hb.hpp"
#include "lint/match.hpp"
#include "lint/overlap_hazards.hpp"
#include "lint/races.hpp"
#include "lint/requests.hpp"
#include "lint/transform_check.hpp"

namespace osim::lint {

namespace {

/// Shape sanity: all other passes index trace.ranks by rank id, so a trace
/// whose stream count disagrees with its declared rank count (possible
/// after salvage recovery of a damaged file) cannot be analyzed at all.
bool check_structure(const trace::Trace& trace, Report& report) {
  if (trace.num_ranks < 0 ||
      trace.ranks.size() != static_cast<std::size_t>(trace.num_ranks)) {
    report.add(Diagnostic{
        Severity::kError, "structure", "rank-shape", -1, kNoRecord,
        strprintf("trace declares %d rank(s) but carries %zu record "
                  "stream(s); skipping semantic passes",
                  trace.num_ranks, trace.ranks.size()),
        {}});
    return false;
  }
  return true;
}

/// Runs the task list on `jobs` workers. Each task owns one result slot,
/// so the schedule (and thread count) cannot affect the merged report.
void run_tasks(std::vector<std::function<void()>>& tasks, int jobs) {
  if (jobs <= 1 || tasks.size() <= 1) {
    for (auto& task : tasks) task();
    return;
  }
  std::atomic<std::size_t> next{0};
  const std::size_t workers =
      std::min(static_cast<std::size_t>(jobs), tasks.size());
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (std::size_t i = next.fetch_add(1); i < tasks.size();
           i = next.fetch_add(1)) {
        tasks[i]();
      }
    });
  }
  for (std::thread& t : pool) t.join();
}

}  // namespace

Report lint_trace(const trace::Trace& trace, const LintOptions& options) {
  Report report;
  if (!check_structure(trace, report)) return report;

  const std::size_t num_ranks = trace.ranks.size();
  // Slot layout (canonical merge order): match, requests per rank,
  // collectives, deadlock, then the happens-before passes (races + overlap
  // share one slot: both consume the same HbAnalysis).
  std::vector<Report> slots(num_ranks + 4);
  std::vector<std::function<void()>> tasks;
  tasks.emplace_back([&] { check_matching(trace, slots[0]); });
  for (std::size_t r = 0; r < num_ranks; ++r) {
    tasks.emplace_back([&, r] {
      check_requests_rank(trace, static_cast<trace::Rank>(r), slots[1 + r]);
    });
  }
  tasks.emplace_back(
      [&] { check_collectives(trace, slots[num_ranks + 1]); });
  tasks.emplace_back([&] {
    check_deadlock(trace, slots[num_ranks + 2],
                   options.eager_threshold_bytes);
  });
  tasks.emplace_back([&] {
    const HbAnalysis hb =
        analyze_happens_before(trace, options.eager_threshold_bytes);
    check_races(trace, hb, slots[num_ranks + 3]);
    check_overlap_hazards(trace, hb, slots[num_ranks + 3]);
  });

  run_tasks(tasks, options.jobs);
  for (const Report& slot : slots) report.merge(slot);
  return report;
}

Report lint_transform(const trace::Trace& original,
                      const trace::Trace& transformed,
                      const LintOptions& /*options*/) {
  Report report;
  check_transform(original, transformed, report);
  return report;
}

}  // namespace osim::lint
