// Lint pass 3: deadlock detection.
//
// Runs an *untimed* abstract interpretation of the trace — no clocks, no
// network model — in which every blocking condition is reduced to its pure
// dependency: a blocking receive needs a matching send issued, a
// rendezvous send (synchronous, or larger than the eager threshold) needs
// its matching receive posted, a wait needs its requests' partners, and a
// collective needs every rank to arrive. Records are executed to a fixed
// point under round-robin scheduling; because completion in this model is
// monotone (once satisfiable, always satisfiable), any rank still blocked
// at the fixed point can never progress in a real replay either.
//
// Stuck ranks are then connected into a cross-rank wait-for graph and its
// strongly connected components are reported: cyclic components as
// deadlock cycles with the full blame chain (who waits on whom, at which
// record), acyclic stuck ranks as starvation (waiting on a peer that
// terminates without satisfying them).
#pragma once

#include <cstdint>

#include "lint/diagnostics.hpp"
#include "trace/trace.hpp"

namespace osim::lint {

/// Default rendezvous cutoff, mirroring dimemas::Platform's default eager
/// threshold: sends at or below this size are assumed buffered and never
/// block; larger (or synchronous) sends block until the receive is posted.
inline constexpr std::uint64_t kDefaultEagerThresholdBytes = 16 * 1024;

void check_deadlock(const trace::Trace& trace, Report& report,
                    std::uint64_t eager_threshold_bytes =
                        kDefaultEagerThresholdBytes);

}  // namespace osim::lint
