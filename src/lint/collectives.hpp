// Lint pass 5: collective consistency.
//
// The replayer expands GlobalOps into point-to-point transfers by pairing
// the k-th collective of every rank (dimemas/collectives.cpp); that is
// only meaningful when all ranks issue the *same* collective sequence.
// This pass checks, without replaying, that every rank's GlobalOp stream
// agrees with rank 0's in length, kind, root and sequence number (errors),
// and that per-rank payload sizes are compatible (warning — the expansion
// uses each rank's own size, so a mismatch skews volumes rather than
// breaking matching).
#pragma once

#include "lint/diagnostics.hpp"
#include "trace/trace.hpp"

namespace osim::lint {

void check_collectives(const trace::Trace& trace, Report& report);

}  // namespace osim::lint
