#include "lint/deadlock.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <variant>
#include <vector>

#include "common/expect.hpp"
#include "common/strings.hpp"
#include "dimemas/matching.hpp"

namespace osim::lint {

namespace {

using dimemas::RecvEnvelope;
using dimemas::SendEnvelope;
using dimemas::envelope_matches;
using trace::CpuBurst;
using trace::GlobalOp;
using trace::kAnyRank;
using trace::Rank;
using trace::Record;
using trace::Recv;
using trace::ReqId;
using trace::Send;
using trace::Wait;

constexpr const char* kPass = "deadlock";

struct PendingSend {
  SendEnvelope env;
  bool rendezvous = false;
  bool matched = false;
};

struct PendingRecv {
  RecvEnvelope env;
  bool matched = false;
};

/// What an immediate request resolves to in the untimed model.
struct ReqEntry {
  const PendingSend* send = nullptr;  // isend: complete when eager or matched
  const PendingRecv* recv = nullptr;  // irecv: complete when matched
  bool complete() const {
    if (send != nullptr) return !send->rendezvous || send->matched;
    if (recv != nullptr) return recv->matched;
    return true;
  }
};

enum class BlockKind { kNone, kSend, kRecv, kWait, kCollective };

struct RankMachine {
  std::size_t pc = 0;
  bool finished = false;
  BlockKind block = BlockKind::kNone;
  std::size_t block_record = 0;
  const PendingSend* blocked_send = nullptr;
  const PendingRecv* blocked_recv = nullptr;
  std::vector<ReqId> wait_pending;      // kWait: not-yet-complete requests
  std::int64_t coll_ordinal = 0;        // kCollective: my arrival ordinal
  std::int64_t colls_arrived = 0;       // collectives this rank reached
  std::map<ReqId, ReqEntry> requests;
};

class AbstractMachine {
 public:
  AbstractMachine(const trace::Trace& trace, std::uint64_t eager_threshold)
      : trace_(trace), eager_threshold_(eager_threshold) {
    machines_.resize(trace.ranks.size());
    unmatched_sends_.resize(trace.ranks.size());
    unmatched_recvs_.resize(trace.ranks.size());
  }

  void run_to_fixpoint() {
    bool progress = true;
    while (progress) {
      progress = false;
      for (Rank r = 0; r < trace_.num_ranks; ++r) {
        if (advance(r)) progress = true;
      }
    }
  }

  void report_stuck(Report& report) const;

 private:
  RankMachine& machine(Rank r) {
    return machines_[static_cast<std::size_t>(r)];
  }
  const std::vector<Record>& stream(Rank r) const {
    return trace_.ranks[static_cast<std::size_t>(r)];
  }

  bool in_range(Rank r) const { return r >= 0 && r < trace_.num_ranks; }

  bool block_resolved(const RankMachine& m) const {
    switch (m.block) {
      case BlockKind::kNone:
        return true;
      case BlockKind::kSend:
        return m.blocked_send->matched;
      case BlockKind::kRecv:
        return m.blocked_recv->matched;
      case BlockKind::kWait:
        return std::all_of(m.wait_pending.begin(), m.wait_pending.end(),
                           [&](ReqId req) {
                             const auto it = m.requests.find(req);
                             return it == m.requests.end() ||
                                    it->second.complete();
                           });
      case BlockKind::kCollective:
        return std::all_of(machines_.begin(), machines_.end(),
                           [&](const RankMachine& other) {
                             return other.colls_arrived > m.coll_ordinal;
                           });
    }
    OSIM_UNREACHABLE("bad block kind");
  }

  /// Executes as many records of rank `r` as possible; true on progress.
  bool advance(Rank r) {
    RankMachine& m = machine(r);
    bool progressed = false;
    while (!m.finished) {
      if (m.block != BlockKind::kNone) {
        if (!block_resolved(m)) return progressed;
        m.block = BlockKind::kNone;
        progressed = true;
      }
      const auto& recs = stream(r);
      if (m.pc >= recs.size()) {
        m.finished = true;
        progressed = true;
        break;
      }
      const std::size_t i = m.pc++;
      progressed = true;
      execute(r, m, i, recs[i]);
    }
    return progressed;
  }

  void execute(Rank r, RankMachine& m, std::size_t i, const Record& rec) {
    if (const auto* send = std::get_if<Send>(&rec)) {
      if (!in_range(send->dest) || send->dest == r) return;  // match pass
      sends_pool_.push_back(PendingSend{
          SendEnvelope{r, send->dest, send->tag, send->bytes},
          send->synchronous || send->bytes > eager_threshold_, false});
      PendingSend* ps = &sends_pool_.back();
      match_send(ps);
      if (send->immediate) {
        if (send->request != trace::kNoRequest) {
          m.requests[send->request] = ReqEntry{ps, nullptr};
        }
        return;
      }
      if (ps->rendezvous && !ps->matched) {
        m.block = BlockKind::kSend;
        m.block_record = i;
        m.blocked_send = ps;
      }
    } else if (const auto* recv = std::get_if<Recv>(&rec)) {
      if ((recv->src != kAnyRank && !in_range(recv->src)) ||
          recv->src == r) {
        return;  // reported by the match pass
      }
      recvs_pool_.push_back(PendingRecv{
          RecvEnvelope{recv->src, r, recv->tag, recv->bytes}, false});
      PendingRecv* pr = &recvs_pool_.back();
      match_recv(pr);
      if (recv->immediate) {
        if (recv->request != trace::kNoRequest) {
          m.requests[recv->request] = ReqEntry{nullptr, pr};
        }
        return;
      }
      if (!pr->matched) {
        m.block = BlockKind::kRecv;
        m.block_record = i;
        m.blocked_recv = pr;
      }
    } else if (const auto* wait = std::get_if<Wait>(&rec)) {
      std::vector<ReqId> pending;
      for (const ReqId req : wait->requests) {
        const auto it = m.requests.find(req);
        // Unknown requests are the requests pass's finding; treat them as
        // complete so one defect does not cascade into phantom deadlocks.
        if (it != m.requests.end() && !it->second.complete()) {
          pending.push_back(req);
        }
      }
      if (!pending.empty()) {
        m.block = BlockKind::kWait;
        m.block_record = i;
        m.wait_pending = std::move(pending);
      }
    } else if (std::get_if<GlobalOp>(&rec) != nullptr) {
      m.coll_ordinal = m.colls_arrived++;
      m.block = BlockKind::kCollective;
      m.block_record = i;
    }
    // CpuBurst: no dependency.
  }

  void match_send(PendingSend* send) {
    auto& recvs = unmatched_recvs_[static_cast<std::size_t>(send->env.dst)];
    for (auto it = recvs.begin(); it != recvs.end(); ++it) {
      if (envelope_matches((*it)->env, send->env)) {
        (*it)->matched = true;
        send->matched = true;
        recvs.erase(it);
        return;
      }
    }
    unmatched_sends_[static_cast<std::size_t>(send->env.dst)].push_back(send);
  }

  void match_recv(PendingRecv* recv) {
    auto& sends = unmatched_sends_[static_cast<std::size_t>(recv->env.dst)];
    for (auto it = sends.begin(); it != sends.end(); ++it) {
      if (envelope_matches(recv->env, (*it)->env)) {
        (*it)->matched = true;
        recv->matched = true;
        sends.erase(it);
        return;
      }
    }
    unmatched_recvs_[static_cast<std::size_t>(recv->env.dst)].push_back(recv);
  }

  /// Ranks this stuck rank is waiting on (blame edges), and a short
  /// description of what it needs from them.
  std::vector<Rank> blame_targets(Rank r, const RankMachine& m,
                                  std::string* what) const;

  const trace::Trace& trace_;
  const std::uint64_t eager_threshold_;
  std::vector<RankMachine> machines_;
  // Stable-address pools; inbox deques point into them.
  std::deque<PendingSend> sends_pool_;
  std::deque<PendingRecv> recvs_pool_;
  std::vector<std::deque<PendingSend*>> unmatched_sends_;
  std::vector<std::deque<PendingRecv*>> unmatched_recvs_;
};

std::vector<Rank> AbstractMachine::blame_targets(Rank r, const RankMachine& m,
                                                 std::string* what) const {
  std::set<Rank> targets;
  switch (m.block) {
    case BlockKind::kSend:
      targets.insert(m.blocked_send->env.dst);
      *what = strprintf("a matching recv on rank %d",
                        m.blocked_send->env.dst);
      break;
    case BlockKind::kRecv:
      if (m.blocked_recv->env.src != kAnyRank) {
        targets.insert(m.blocked_recv->env.src);
        *what = strprintf("a matching send from rank %d",
                          m.blocked_recv->env.src);
      } else {
        for (Rank o = 0; o < trace_.num_ranks; ++o) {
          if (o != r && !machines_[static_cast<std::size_t>(o)].finished) {
            targets.insert(o);
          }
        }
        *what = "a matching send from ANY_SOURCE";
      }
      break;
    case BlockKind::kWait:
      for (const ReqId req : m.wait_pending) {
        const auto it = m.requests.find(req);
        if (it == m.requests.end() || it->second.complete()) continue;
        if (it->second.send != nullptr) {
          targets.insert(it->second.send->env.dst);
        } else if (it->second.recv != nullptr) {
          if (it->second.recv->env.src != kAnyRank) {
            targets.insert(it->second.recv->env.src);
          } else {
            for (Rank o = 0; o < trace_.num_ranks; ++o) {
              if (o != r &&
                  !machines_[static_cast<std::size_t>(o)].finished) {
                targets.insert(o);
              }
            }
          }
        }
      }
      *what = strprintf("%zu incomplete request(s)", m.wait_pending.size());
      break;
    case BlockKind::kCollective:
      for (Rank o = 0; o < trace_.num_ranks; ++o) {
        if (o != r && machines_[static_cast<std::size_t>(o)].colls_arrived <=
                          m.coll_ordinal) {
          targets.insert(o);
        }
      }
      *what = strprintf("collective #%lld arrival",
                        static_cast<long long>(m.coll_ordinal));
      break;
    case BlockKind::kNone:
      break;
  }
  return std::vector<Rank>(targets.begin(), targets.end());
}

void AbstractMachine::report_stuck(Report& report) const {
  std::vector<Rank> stuck;
  for (Rank r = 0; r < trace_.num_ranks; ++r) {
    if (!machines_[static_cast<std::size_t>(r)].finished) stuck.push_back(r);
  }
  if (stuck.empty()) return;

  // Blame edges restricted to stuck ranks (a finished rank cannot be part
  // of a cycle), plus per-rank description for the chain text.
  std::map<Rank, std::vector<Rank>> edges;
  std::map<Rank, std::string> needs;
  const std::set<Rank> stuck_set(stuck.begin(), stuck.end());
  for (const Rank r : stuck) {
    const RankMachine& m = machines_[static_cast<std::size_t>(r)];
    std::string what;
    std::vector<Rank> targets = blame_targets(r, m, &what);
    needs[r] = what;
    std::vector<Rank>& out = edges[r];
    for (const Rank t : targets) {
      if (stuck_set.count(t) > 0) out.push_back(t);
    }
  }

  // Strongly connected components (iterative Tarjan) over stuck ranks.
  std::map<Rank, int> index, lowlink, component;
  std::vector<Rank> scc_stack;
  std::set<Rank> on_stack;
  int next_index = 0, next_component = 0;
  struct Frame {
    Rank rank;
    std::size_t edge = 0;
  };
  for (const Rank root : stuck) {
    if (index.count(root) > 0) continue;
    std::vector<Frame> call_stack{{root}};
    index[root] = lowlink[root] = next_index++;
    scc_stack.push_back(root);
    on_stack.insert(root);
    while (!call_stack.empty()) {
      Frame& frame = call_stack.back();
      const std::vector<Rank>& out = edges[frame.rank];
      if (frame.edge < out.size()) {
        const Rank next = out[frame.edge++];
        if (index.count(next) == 0) {
          index[next] = lowlink[next] = next_index++;
          scc_stack.push_back(next);
          on_stack.insert(next);
          call_stack.push_back(Frame{next});
        } else if (on_stack.count(next) > 0) {
          lowlink[frame.rank] = std::min(lowlink[frame.rank], index[next]);
        }
      } else {
        if (lowlink[frame.rank] == index[frame.rank]) {
          while (true) {
            const Rank popped = scc_stack.back();
            scc_stack.pop_back();
            on_stack.erase(popped);
            component[popped] = next_component;
            if (popped == frame.rank) break;
          }
          ++next_component;
        }
        const Rank done = frame.rank;
        call_stack.pop_back();
        if (!call_stack.empty()) {
          lowlink[call_stack.back().rank] =
              std::min(lowlink[call_stack.back().rank], lowlink[done]);
        }
      }
    }
  }

  std::map<int, std::vector<Rank>> members;
  for (const Rank r : stuck) members[component[r]].push_back(r);

  std::set<Rank> in_cycle;
  for (const auto& [comp, ranks] : members) {
    if (ranks.size() < 2) continue;  // no self-edges, so singletons: acyclic
    for (const Rank r : ranks) in_cycle.insert(r);
    std::vector<std::string> chain;
    for (const Rank r : ranks) {
      const RankMachine& m = machines_[static_cast<std::size_t>(r)];
      std::vector<std::string> waits;
      for (const Rank t : edges[r]) {
        waits.push_back(strprintf("%d", t));
      }
      chain.push_back(strprintf(
          "rank %d blocked at record %zu [%s] needs %s (waits on rank %s)",
          r, m.block_record,
          trace::to_string(stream(r)[m.block_record]).c_str(),
          needs.at(r).c_str(), join(waits, ", rank ").c_str()));
    }
    std::vector<std::string> rank_names;
    for (const Rank r : ranks) rank_names.push_back(strprintf("%d", r));
    report.error(kPass, -1, kNoRecord,
                 strprintf("deadlock cycle among ranks %s: %s",
                           join(rank_names, ", ").c_str(),
                           join(chain, "; ").c_str()));
  }

  for (const Rank r : stuck) {
    if (in_cycle.count(r) > 0) continue;
    const RankMachine& m = machines_[static_cast<std::size_t>(r)];
    report.error(
        kPass, r, static_cast<std::ptrdiff_t>(m.block_record),
        strprintf("rank starves: blocked at [%s] needing %s that no rank "
                  "ever provides",
                  trace::to_string(stream(r)[m.block_record]).c_str(),
                  needs.at(r).c_str()));
  }
}

}  // namespace

void check_deadlock(const trace::Trace& trace, Report& report,
                    std::uint64_t eager_threshold_bytes) {
  AbstractMachine machine(trace, eager_threshold_bytes);
  machine.run_to_fixpoint();
  machine.report_stuck(report);
}

}  // namespace osim::lint
