#include "lint/overlap_hazards.hpp"

#include <cstddef>
#include <map>
#include <utility>
#include <variant>
#include <vector>

#include "common/strings.hpp"

namespace osim::lint {

namespace {

using trace::CpuBurst;
using trace::Rank;
using trace::Record;
using trace::Recv;
using trace::ReqId;
using trace::Send;
using trace::Wait;

constexpr const char* kPass = "overlap";

std::string window_to_string(std::uint64_t instructions, double mips) {
  if (mips > 0.0) {
    return strprintf("%llu instruction(s), %.9g s",
                     static_cast<unsigned long long>(instructions),
                     static_cast<double>(instructions) / (mips * 1e6));
  }
  return strprintf("%llu instruction(s)",
                   static_cast<unsigned long long>(instructions));
}

}  // namespace

void check_overlap_hazards(const trace::Trace& trace, const HbAnalysis& hb,
                           Report& report) {
  struct Posted {
    std::size_t record = 0;
    std::uint64_t cum_instructions = 0;  // compute executed before the post
    bool is_send = false;
  };

  std::size_t num_immediate = 0;
  std::size_t num_zero = 0;
  std::size_t num_overlapped = 0;
  std::size_t num_unwaited = 0;
  std::uint64_t total_window = 0;

  for (Rank r = 0; r < trace.num_ranks; ++r) {
    const auto& stream = trace.ranks[static_cast<std::size_t>(r)];
    std::map<ReqId, Posted> posted;
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < stream.size(); ++i) {
      const Record& rec = stream[i];
      if (const auto* burst = std::get_if<CpuBurst>(&rec)) {
        cum += burst->instructions;
      } else if (const auto* send = std::get_if<Send>(&rec)) {
        if (send->immediate && send->request != trace::kNoRequest) {
          posted[send->request] = Posted{i, cum, true};
          ++num_immediate;
        }
      } else if (const auto* recv = std::get_if<Recv>(&rec)) {
        if (recv->immediate && recv->request != trace::kNoRequest) {
          posted[recv->request] = Posted{i, cum, false};
          ++num_immediate;
        }
      } else if (const auto* wait = std::get_if<Wait>(&rec)) {
        std::size_t nonzero_here = 0;
        std::uint64_t window_here = 0;
        for (const ReqId req : wait->requests) {
          const auto it = posted.find(req);
          if (it == posted.end()) continue;  // misuse: the requests pass
          const Posted p = it->second;
          posted.erase(it);
          const std::uint64_t window = cum - p.cum_instructions;
          if (window == 0) {
            ++num_zero;
            const VectorClock& post = hb.post(r, p.record);
            report.add(Diagnostic{
                Severity::kInfo, kPass, "zero-window", r,
                static_cast<std::ptrdiff_t>(p.record),
                strprintf("immediate %s posted at record %zu is waited at "
                          "record %zu with no compute in between: zero "
                          "overlap window",
                          p.is_send ? "send" : "receive", p.record, i),
                post.empty() ? std::string()
                             : strprintf("post %s",
                                         clock_to_string(post).c_str())});
          } else {
            ++num_overlapped;
            ++nonzero_here;
            window_here += window;
            total_window += window;
          }
        }
        if (nonzero_here >= 2) {
          report.add(Diagnostic{
              Severity::kInfo, kPass, "postponed-wait", r,
              static_cast<std::ptrdiff_t>(i),
              strprintf("wait retires %zu requests with nonzero overlap "
                        "windows (%s): postponed-wait chain",
                        nonzero_here,
                        window_to_string(window_here, trace.mips).c_str()),
              {}});
        }
      }
    }
    num_unwaited += posted.size();
  }

  if (num_immediate > 0) {
    report.add(Diagnostic{
        Severity::kInfo, kPass, "overlap-summary", -1, kNoRecord,
        strprintf("%zu immediate operation(s): %zu zero-window, %zu with "
                  "overlap window (total %s), %zu never waited",
                  num_immediate, num_zero, num_overlapped,
                  window_to_string(total_window, trace.mips).c_str(),
                  num_unwaited),
        {}});
  }
}

}  // namespace osim::lint
