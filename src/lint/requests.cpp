#include "lint/requests.hpp"

#include <cstddef>
#include <map>
#include <set>
#include <variant>

#include "common/strings.hpp"

namespace osim::lint {

namespace {

using trace::Rank;
using trace::Record;
using trace::Recv;
using trace::ReqId;
using trace::Send;
using trace::Wait;

constexpr const char* kPass = "requests";

struct ReqState {
  std::size_t issue_record = 0;
  bool completed = false;
  std::size_t wait_record = 0;  // valid when completed
};

void add_error(Report& report, std::string code, Rank rank,
               std::ptrdiff_t record, std::string message) {
  report.add(Diagnostic{Severity::kError, kPass, std::move(code), rank,
                        record, std::move(message), {}});
}

void note_issue(std::map<ReqId, ReqState>& requests, Rank rank,
                std::size_t record, ReqId request, const char* what,
                Report& report) {
  if (request == trace::kNoRequest) {
    add_error(report, "no-request-id", rank,
              static_cast<std::ptrdiff_t>(record),
              strprintf("immediate %s without a request id", what));
    return;
  }
  const auto it = requests.find(request);
  if (it != requests.end()) {
    add_error(
        report, "request-reuse", rank, static_cast<std::ptrdiff_t>(record),
        strprintf("request id %lld reused (previously issued at record %zu%s)",
                  static_cast<long long>(request), it->second.issue_record,
                  it->second.completed ? ", already completed" : ""));
    // Track the newer issue so a later wait resolves against it.
    it->second = ReqState{record, false, 0};
    return;
  }
  requests.emplace(request, ReqState{record, false, 0});
}

/// First record at which `request` is issued strictly after `after`, or
/// npos. Distinguishes "waited before posted" from "never posted at all".
std::size_t next_issue_after(const std::vector<Record>& stream,
                             std::size_t after, ReqId request) {
  for (std::size_t i = after + 1; i < stream.size(); ++i) {
    if (const auto* send = std::get_if<Send>(&stream[i])) {
      if (send->immediate && send->request == request) return i;
    } else if (const auto* recv = std::get_if<Recv>(&stream[i])) {
      if (recv->immediate && recv->request == request) return i;
    }
  }
  return static_cast<std::size_t>(-1);
}

}  // namespace

void check_requests(const trace::Trace& trace, Report& report) {
  for (Rank rank = 0; rank < trace.num_ranks; ++rank) {
    check_requests_rank(trace, rank, report);
  }
}

void check_requests_rank(const trace::Trace& trace, Rank rank,
                         Report& report) {
  const auto& stream = trace.ranks[static_cast<std::size_t>(rank)];
  std::map<ReqId, ReqState> requests;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const Record& rec = stream[i];
    if (const auto* send = std::get_if<Send>(&rec)) {
      if (send->immediate) {
        note_issue(requests, rank, i, send->request, "send", report);
      }
    } else if (const auto* recv = std::get_if<Recv>(&rec)) {
      if (recv->immediate) {
        note_issue(requests, rank, i, recv->request, "recv", report);
      }
    } else if (const auto* wait = std::get_if<Wait>(&rec)) {
      if (wait->requests.empty()) {
        add_error(report, "empty-wait", rank, static_cast<std::ptrdiff_t>(i),
                  "wait with an empty request list");
        continue;
      }
      std::set<ReqId> seen_here;
      for (const ReqId req : wait->requests) {
        if (!seen_here.insert(req).second) {
          add_error(report, "duplicate-in-wait", rank,
                    static_cast<std::ptrdiff_t>(i),
                    strprintf("request %lld listed twice in one wait",
                              static_cast<long long>(req)));
          continue;
        }
        const auto it = requests.find(req);
        if (it == requests.end()) {
          const std::size_t later = next_issue_after(stream, i, req);
          if (later != static_cast<std::size_t>(-1)) {
            add_error(
                report, "wait-before-post", rank,
                static_cast<std::ptrdiff_t>(i),
                strprintf("wait on request %lld before it is posted "
                          "(posted later at record %zu)",
                          static_cast<long long>(req), later));
          } else {
            add_error(report, "wait-unknown", rank,
                      static_cast<std::ptrdiff_t>(i),
                      strprintf("wait on unknown request %lld",
                                static_cast<long long>(req)));
          }
        } else if (it->second.completed) {
          add_error(
              report, "double-wait", rank, static_cast<std::ptrdiff_t>(i),
              strprintf("wait on request %lld already completed by the "
                        "wait at record %zu",
                        static_cast<long long>(req),
                        it->second.wait_record));
        } else {
          it->second.completed = true;
          it->second.wait_record = i;
        }
      }
    }
  }
  for (const auto& [req, state] : requests) {
    if (state.completed) continue;
    add_error(
        report, "leaked-request", rank,
        static_cast<std::ptrdiff_t>(state.issue_record),
        strprintf("request %lld is never waited: leaked at end of trace",
                  static_cast<long long>(req)));
  }
}

}  // namespace osim::lint
