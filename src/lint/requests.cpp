#include "lint/requests.hpp"

#include <cstddef>
#include <map>
#include <set>
#include <variant>

#include "common/strings.hpp"

namespace osim::lint {

namespace {

using trace::Rank;
using trace::Record;
using trace::Recv;
using trace::ReqId;
using trace::Send;
using trace::Wait;

constexpr const char* kPass = "requests";

struct ReqState {
  std::size_t issue_record = 0;
  bool completed = false;
  std::size_t wait_record = 0;  // valid when completed
};

void note_issue(std::map<ReqId, ReqState>& requests, Rank rank,
                std::size_t record, ReqId request, const char* what,
                Report& report) {
  if (request == trace::kNoRequest) {
    report.error(kPass, rank, static_cast<std::ptrdiff_t>(record),
                 strprintf("immediate %s without a request id", what));
    return;
  }
  const auto it = requests.find(request);
  if (it != requests.end()) {
    report.error(
        kPass, rank, static_cast<std::ptrdiff_t>(record),
        strprintf("request id %lld reused (previously issued at record %zu%s)",
                  static_cast<long long>(request), it->second.issue_record,
                  it->second.completed ? ", already completed" : ""));
    // Track the newer issue so a later wait resolves against it.
    it->second = ReqState{record, false, 0};
    return;
  }
  requests.emplace(request, ReqState{record, false, 0});
}

}  // namespace

void check_requests(const trace::Trace& trace, Report& report) {
  for (Rank rank = 0; rank < trace.num_ranks; ++rank) {
    const auto& stream = trace.ranks[static_cast<std::size_t>(rank)];
    std::map<ReqId, ReqState> requests;
    for (std::size_t i = 0; i < stream.size(); ++i) {
      const Record& rec = stream[i];
      if (const auto* send = std::get_if<Send>(&rec)) {
        if (send->immediate) {
          note_issue(requests, rank, i, send->request, "send", report);
        }
      } else if (const auto* recv = std::get_if<Recv>(&rec)) {
        if (recv->immediate) {
          note_issue(requests, rank, i, recv->request, "recv", report);
        }
      } else if (const auto* wait = std::get_if<Wait>(&rec)) {
        if (wait->requests.empty()) {
          report.error(kPass, rank, static_cast<std::ptrdiff_t>(i),
                       "wait with an empty request list");
          continue;
        }
        std::set<ReqId> seen_here;
        for (const ReqId req : wait->requests) {
          if (!seen_here.insert(req).second) {
            report.error(kPass, rank, static_cast<std::ptrdiff_t>(i),
                         strprintf("request %lld listed twice in one wait",
                                   static_cast<long long>(req)));
            continue;
          }
          const auto it = requests.find(req);
          if (it == requests.end()) {
            report.error(kPass, rank, static_cast<std::ptrdiff_t>(i),
                         strprintf("wait on unknown request %lld",
                                   static_cast<long long>(req)));
          } else if (it->second.completed) {
            report.error(
                kPass, rank, static_cast<std::ptrdiff_t>(i),
                strprintf("wait on request %lld already completed by the "
                          "wait at record %zu",
                          static_cast<long long>(req),
                          it->second.wait_record));
          } else {
            it->second.completed = true;
            it->second.wait_record = i;
          }
        }
      }
    }
    for (const auto& [req, state] : requests) {
      if (state.completed) continue;
      report.error(
          kPass, rank, static_cast<std::ptrdiff_t>(state.issue_record),
          strprintf("request %lld is never waited: leaked at end of trace",
                    static_cast<long long>(req)));
    }
  }
}

}  // namespace osim::lint
