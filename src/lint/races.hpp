// Race detector: findings that need the happens-before relation.
//
// Two checks, both pure functions of a trace plus its HbAnalysis:
//
//   wildcard-race   a wildcard receive whose match is nondeterministic: a
//                   second send from a *different* source also matches the
//                   receive's envelope and is concurrent (under HB) with the
//                   send the abstract machine paired — so a real execution
//                   may deliver either message. Same-source candidates are
//                   never racy (MPI non-overtaking orders them), and a
//                   candidate ordered after the receive's completion cannot
//                   reach it. Because the collective model is a conservative
//                   barrier (see hb.hpp) this check under-reports rather
//                   than invents races.
//
//   buffer-reuse    a blocking send (recv) whose envelope aliases an
//                   in-flight immediate send (recv) on the same rank — same
//                   peer and tag, request not yet waited. The blocking op
//                   plausibly touches the same application buffer while the
//                   nonblocking transfer may still be using it. Immediate-
//                   on-immediate aliasing is NOT flagged: double-buffered
//                   pipelines legitimately keep several requests in flight.
//
// Both findings are warnings: the trace replays deterministically in our
// simulator, but the program it describes is fragile on a real machine.
#pragma once

#include "lint/diagnostics.hpp"
#include "lint/hb.hpp"
#include "trace/trace.hpp"

namespace osim::lint {

void check_races(const trace::Trace& trace, const HbAnalysis& hb,
                 Report& report);

}  // namespace osim::lint
