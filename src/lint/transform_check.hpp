// Lint pass 4: overlap-transform safety.
//
// Given the original trace and its overlap-transformed counterpart,
// verifies the guarantees overlap/transform.cpp claims, decoding the
// derived chunk tags (overlap::decode_chunk_tag) to reconstruct which
// transformed sends/recvs implement which original message:
//
//   * chunk-tag uniqueness — within one (src, dst) pair no derived tag is
//     issued twice (a collision would cross-match chunks of different
//     messages at replay);
//   * chunk completeness — every chunk group carries indices 0..n-1 with
//     no gap or duplicate;
//   * byte conservation — each chunk group's bytes sum to the size of the
//     original message it replaces, per (src, dst, tag), on both the send
//     and the receive side;
//   * per-pair order — chunk groups cover the original messages of a
//     (src, dst, tag) triple exactly once, in pair-sequence order when the
//     whole triple is chunked.
#pragma once

#include "lint/diagnostics.hpp"
#include "trace/trace.hpp"

namespace osim::lint {

void check_transform(const trace::Trace& original,
                     const trace::Trace& transformed, Report& report);

}  // namespace osim::lint
