// Happens-before engine: per-rank vector clocks over every trace record.
//
// Runs the same untimed abstract interpretation as the deadlock pass
// (round-robin execution to a fixed point, the replayer's matching
// discipline from dimemas/matching.hpp, the eager/rendezvous protocol
// split from deadlock.hpp) but additionally timestamps every record with a
// vector clock:
//
//   program order   executing record i of rank r ticks component r, so the
//                   clock of record i strictly dominates that of record i-1;
//   message edges   a receive's *completion* joins the matching send's post
//                   clock (data cannot arrive before it was sent), and a
//                   rendezvous send's completion joins the matching
//                   receive's post clock (the transfer cannot start before
//                   the receive is posted). Eager sends complete locally
//                   and contribute no synchronization;
//   waits           join the message edges of every request they complete;
//   collectives     the k-th collective completes at the join of all ranks'
//                   arrival clocks at their k-th collective — a barrier
//                   approximation that is deliberately conservative (it
//                   orders more than a real non-synchronizing collective
//                   would, so HB-based race checks under-report rather than
//                   invent ordering violations... conservatively assuming
//                   MORE order suppresses races; see races.hpp for how the
//                   race pass compensates).
//
// Two records are ordered (a happens-before b) iff clock(a) <= clock(b)
// componentwise and the clocks differ; otherwise they are concurrent. The
// race and overlap-hazard passes are pure functions of the resulting
// HbAnalysis.
//
// The engine is total on damaged traces: it never executes past a blocked
// rank, so a deadlocked or salvage-truncated trace simply leaves some
// records without clocks (empty vectors) and `converged` false. Passes on
// top must treat a missing clock as "unknown order" and stay silent.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lint/deadlock.hpp"
#include "trace/trace.hpp"

namespace osim::lint {

/// One component per rank; component r counts records executed by rank r.
using VectorClock = std::vector<std::uint64_t>;

/// True when `a` happens-before `b` (componentwise <=, and a != b). Empty
/// clocks (records the abstract machine never executed) are unordered.
bool hb_before(const VectorClock& a, const VectorClock& b);

/// True when neither clock orders the other (and both are known).
bool hb_concurrent(const VectorClock& a, const VectorClock& b);

/// Render as "[1,0,2]" for diagnostics evidence.
std::string clock_to_string(const VectorClock& clock);

/// A matched point-to-point pair, as paired by the abstract machine.
struct HbMatch {
  trace::Rank src = -1;
  std::size_t send_record = 0;  // index in the sender's stream
  trace::Rank dst = -1;
  std::size_t recv_record = 0;  // index in the receiver's stream
};

struct HbAnalysis {
  std::int32_t num_ranks = 0;
  /// All ranks ran their streams to completion. False on deadlock or
  /// starvation (the deadlock pass reports those); clocks of unexecuted
  /// records stay empty.
  bool converged = false;

  /// post_clocks[r][i]: rank r's clock immediately after *posting* record i
  /// (program-order tick applied, no completion joins). Empty when the
  /// record was never executed.
  std::vector<std::vector<VectorClock>> post_clocks;
  /// completion_clocks[r][i]: the clock once record i's blocking condition
  /// resolved (equal to the post clock for records that never block).
  std::vector<std::vector<VectorClock>> completion_clocks;

  std::vector<HbMatch> matches;

  const VectorClock& post(trace::Rank r, std::size_t i) const {
    return post_clocks[static_cast<std::size_t>(r)][i];
  }
  const VectorClock& completion(trace::Rank r, std::size_t i) const {
    return completion_clocks[static_cast<std::size_t>(r)][i];
  }
};

/// Runs the clocked abstract interpretation. Never throws on trace content;
/// the trace must be structurally sound (ranks.size() == num_ranks — see
/// lint_trace()'s structure pre-pass).
HbAnalysis analyze_happens_before(const trace::Trace& trace,
                                  std::uint64_t eager_threshold_bytes =
                                      kDefaultEagerThresholdBytes);

}  // namespace osim::lint
