#include "lint/diagnostics.hpp"

#include "common/expect.hpp"
#include "common/strings.hpp"
#include "metrics/json.hpp"

namespace osim::lint {

const char* severity_name(Severity severity) {
  switch (severity) {
    case Severity::kInfo:
      return "info";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  OSIM_UNREACHABLE("bad severity");
}

void Report::error(std::string pass, trace::Rank rank, std::ptrdiff_t record,
                   std::string message) {
  add(Diagnostic{Severity::kError, std::move(pass), {}, rank, record,
                 std::move(message), {}});
}

void Report::warning(std::string pass, trace::Rank rank,
                     std::ptrdiff_t record, std::string message) {
  add(Diagnostic{Severity::kWarning, std::move(pass), {}, rank, record,
                 std::move(message), {}});
}

void Report::info(std::string pass, trace::Rank rank, std::ptrdiff_t record,
                  std::string message) {
  add(Diagnostic{Severity::kInfo, std::move(pass), {}, rank, record,
                 std::move(message), {}});
}

void Report::add(Diagnostic diagnostic) {
  switch (diagnostic.severity) {
    case Severity::kError:
      ++num_errors_;
      break;
    case Severity::kWarning:
      ++num_warnings_;
      break;
    case Severity::kInfo:
      ++num_infos_;
      break;
  }
  diagnostics_.push_back(std::move(diagnostic));
}

void Report::merge(const Report& other) {
  for (const Diagnostic& d : other.diagnostics_) add(d);
}

bool Report::has_at_least(Severity severity) const {
  switch (severity) {
    case Severity::kInfo:
      return !diagnostics_.empty();
    case Severity::kWarning:
      return num_errors_ + num_warnings_ > 0;
    case Severity::kError:
      return num_errors_ > 0;
  }
  OSIM_UNREACHABLE("bad severity");
}

std::string Report::render_text() const {
  std::string out;
  for (const Diagnostic& d : diagnostics_) {
    out += severity_name(d.severity);
    out += strprintf(" [%s]", d.pass.c_str());
    if (d.rank >= 0) out += strprintf(" rank %d", d.rank);
    if (d.record != kNoRecord) {
      out += strprintf(" record %td", d.record);
    }
    out += ": ";
    out += d.message;
    out += '\n';
  }
  out += strprintf("%zu error(s), %zu warning(s)", num_errors_,
                   num_warnings_);
  if (num_infos_ > 0) out += strprintf(", %zu info(s)", num_infos_);
  out += '\n';
  return out;
}

namespace {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string Report::render_csv() const {
  std::string out = "severity,pass,rank,record,message\n";
  for (const Diagnostic& d : diagnostics_) {
    out += severity_name(d.severity);
    out += ',';
    out += csv_escape(d.pass);
    out += ',';
    if (d.rank >= 0) out += strprintf("%d", d.rank);
    out += ',';
    if (d.record != kNoRecord) out += strprintf("%td", d.record);
    out += ',';
    out += csv_escape(d.message);
    out += '\n';
  }
  return out;
}

std::string Report::render_json() const {
  metrics::JsonWriter w;
  w.begin_object();
  w.key("schema").value("osim.lint_report");
  w.key("version").value(static_cast<std::int64_t>(kLintReportVersion));
  w.key("clean").value(clean());
  w.key("errors").value(static_cast<std::uint64_t>(num_errors_));
  w.key("warnings").value(static_cast<std::uint64_t>(num_warnings_));
  w.key("infos").value(static_cast<std::uint64_t>(num_infos_));
  w.key("diagnostics").begin_array();
  for (const Diagnostic& d : diagnostics_) {
    w.begin_object();
    w.key("severity").value(severity_name(d.severity));
    w.key("pass").value(d.pass);
    if (!d.code.empty()) w.key("code").value(d.code);
    if (d.rank >= 0) w.key("rank").value(d.rank);
    if (d.record != kNoRecord) {
      w.key("record").value(static_cast<std::int64_t>(d.record));
    }
    w.key("message").value(d.message);
    if (!d.evidence.empty()) w.key("evidence").value(d.evidence);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace osim::lint
