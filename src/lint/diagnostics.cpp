#include "lint/diagnostics.hpp"

#include "common/expect.hpp"
#include "common/strings.hpp"

namespace osim::lint {

const char* severity_name(Severity severity) {
  switch (severity) {
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  OSIM_UNREACHABLE("bad severity");
}

void Report::error(std::string pass, trace::Rank rank, std::ptrdiff_t record,
                   std::string message) {
  diagnostics_.push_back(Diagnostic{Severity::kError, std::move(pass), rank,
                                    record, std::move(message)});
  ++num_errors_;
}

void Report::warning(std::string pass, trace::Rank rank,
                     std::ptrdiff_t record, std::string message) {
  diagnostics_.push_back(Diagnostic{Severity::kWarning, std::move(pass),
                                    rank, record, std::move(message)});
  ++num_warnings_;
}

bool Report::has_at_least(Severity severity) const {
  if (severity == Severity::kWarning) return !diagnostics_.empty();
  return num_errors_ > 0;
}

std::string Report::render_text() const {
  std::string out;
  for (const Diagnostic& d : diagnostics_) {
    out += severity_name(d.severity);
    out += strprintf(" [%s]", d.pass.c_str());
    if (d.rank >= 0) out += strprintf(" rank %d", d.rank);
    if (d.record != kNoRecord) {
      out += strprintf(" record %td", d.record);
    }
    out += ": ";
    out += d.message;
    out += '\n';
  }
  out += strprintf("%zu error(s), %zu warning(s)\n", num_errors_,
                   num_warnings_);
  return out;
}

namespace {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string Report::render_csv() const {
  std::string out = "severity,pass,rank,record,message\n";
  for (const Diagnostic& d : diagnostics_) {
    out += severity_name(d.severity);
    out += ',';
    out += csv_escape(d.pass);
    out += ',';
    if (d.rank >= 0) out += strprintf("%d", d.rank);
    out += ',';
    if (d.record != kNoRecord) out += strprintf("%td", d.record);
    out += ',';
    out += csv_escape(d.message);
    out += '\n';
  }
  return out;
}

}  // namespace osim::lint
