#include "lint/collectives.hpp"

#include <cstddef>
#include <variant>
#include <vector>

#include "common/strings.hpp"

namespace osim::lint {

namespace {

using trace::CollectiveKind;
using trace::GlobalOp;
using trace::Rank;
using trace::Record;

constexpr const char* kPass = "collectives";

struct CollSite {
  GlobalOp op;
  std::size_t record = 0;
};

std::string op_desc(const GlobalOp& op) {
  return strprintf("%s(root=%d, %llu bytes, seq=%lld)",
                   trace::collective_name(op.kind), op.root,
                   static_cast<unsigned long long>(op.bytes),
                   static_cast<long long>(op.sequence));
}

}  // namespace

void check_collectives(const trace::Trace& trace, Report& report) {
  if (trace.ranks.empty()) return;
  std::vector<std::vector<CollSite>> per_rank(trace.ranks.size());
  for (Rank rank = 0; rank < trace.num_ranks; ++rank) {
    const auto& stream = trace.ranks[static_cast<std::size_t>(rank)];
    for (std::size_t i = 0; i < stream.size(); ++i) {
      if (const auto* op = std::get_if<GlobalOp>(&stream[i])) {
        if (op->root < 0 || op->root >= trace.num_ranks) {
          report.error(kPass, rank, static_cast<std::ptrdiff_t>(i),
                       strprintf("collective root rank %d out of range "
                                 "[0, %d)",
                                 op->root, trace.num_ranks));
        }
        per_rank[static_cast<std::size_t>(rank)].push_back(CollSite{*op, i});
      }
    }
  }

  const auto& reference = per_rank[0];
  for (Rank rank = 1; rank < trace.num_ranks; ++rank) {
    const auto& ops = per_rank[static_cast<std::size_t>(rank)];
    if (ops.size() != reference.size()) {
      report.error(kPass, rank, kNoRecord,
                   strprintf("rank issues %zu collective(s) but rank 0 "
                             "issues %zu: the k-th collectives cannot pair",
                             ops.size(), reference.size()));
    }
    const std::size_t common = std::min(ops.size(), reference.size());
    for (std::size_t k = 0; k < common; ++k) {
      const GlobalOp& a = reference[k].op;
      const GlobalOp& b = ops[k].op;
      if (a.kind != b.kind || a.root != b.root ||
          a.sequence != b.sequence) {
        report.error(
            kPass, rank, static_cast<std::ptrdiff_t>(ops[k].record),
            strprintf("collective #%zu disagrees with rank 0: rank %d "
                      "issues %s but rank 0 issues %s (record %zu)",
                      k, rank, op_desc(b).c_str(), op_desc(a).c_str(),
                      reference[k].record));
      } else if (a.bytes != b.bytes) {
        report.warning(
            kPass, rank, static_cast<std::ptrdiff_t>(ops[k].record),
            strprintf("collective #%zu payload differs from rank 0: %llu "
                      "vs %llu bytes",
                      k, static_cast<unsigned long long>(b.bytes),
                      static_cast<unsigned long long>(a.bytes)));
      }
    }
  }
}

}  // namespace osim::lint
