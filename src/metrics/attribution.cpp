#include "metrics/attribution.hpp"

#include <algorithm>

#include "common/expect.hpp"

namespace osim::metrics {

const char* queue_reason_name(QueueReason reason) {
  switch (reason) {
    case QueueReason::kNone:
      return "none";
    case QueueReason::kBus:
      return "bus";
    case QueueReason::kOutPort:
      return "out-port";
    case QueueReason::kInPort:
      return "in-port";
  }
  OSIM_UNREACHABLE("bad QueueReason");
}

WaitComponents& WaitComponents::operator+=(const WaitComponents& other) {
  dependency_s += other.dependency_s;
  bus_contention_s += other.bus_contention_s;
  port_contention_s += other.port_contention_s;
  wire_s += other.wire_s;
  latency_s += other.latency_s;
  return *this;
}

WaitComponents decompose(double begin, double end,
                         const TransferTiming* timing) {
  WaitComponents c;
  if (end <= begin) return c;
  if (timing == nullptr || timing->submit_s < 0.0) {
    // No releasing transfer known: the block was resolved by something we
    // cannot see into (conservatively: a remote dependency).
    c.dependency_s = end - begin;
    return c;
  }
  const double submit = std::clamp(timing->submit_s, begin, end);
  const double raw_start = timing->start_s >= 0.0 ? timing->start_s : end;
  const double start = std::clamp(raw_start, submit, end);

  // Telescoping partition of [begin, end]: the three differences sum to
  // end - begin exactly, in floating point too.
  c.dependency_s = submit - begin;
  const double queued = start - submit;
  switch (timing->queue_reason) {
    case QueueReason::kOutPort:
    case QueueReason::kInPort:
      c.port_contention_s = queued;
      break;
    case QueueReason::kBus:
    case QueueReason::kNone:  // queued without a sampled reason: bus pool
      c.bus_contention_s = queued;
      break;
  }
  const double in_network = end - start;
  c.latency_s = std::min(timing->fixed_latency_s, in_network);
  c.wire_s = in_network - c.latency_s;
  return c;
}

}  // namespace osim::metrics
