#include "metrics/attribution.hpp"

#include <algorithm>

#include "common/expect.hpp"

namespace osim::metrics {

const char* queue_reason_name(QueueReason reason) {
  switch (reason) {
    case QueueReason::kNone:
      return "none";
    case QueueReason::kBus:
      return "bus";
    case QueueReason::kOutPort:
      return "out-port";
    case QueueReason::kInPort:
      return "in-port";
  }
  OSIM_UNREACHABLE("bad QueueReason");
}

WaitComponents& WaitComponents::operator+=(const WaitComponents& other) {
  dependency_s += other.dependency_s;
  fault_s += other.fault_s;
  bus_contention_s += other.bus_contention_s;
  port_contention_s += other.port_contention_s;
  wire_s += other.wire_s;
  latency_s += other.latency_s;
  progress_s += other.progress_s;
  return *this;
}

WaitComponents decompose(double begin, double end,
                         const TransferTiming* timing) {
  WaitComponents c;
  if (end <= begin) return c;
  if (timing == nullptr || timing->submit_s < 0.0) {
    // No releasing transfer known: the block was resolved by something we
    // cannot see into (conservatively: a remote dependency).
    c.dependency_s = end - begin;
    return c;
  }
  const double submit = std::clamp(timing->submit_s, begin, end);
  // The application-driven regime can gate submission itself (the
  // rendezvous handshake waited for a host's MPI call): carve that out of
  // the dependency span. With no gating progress_delay_s == 0, so
  // handshake_begin == submit exactly and nothing changes.
  const double handshake_begin =
      std::clamp(submit - timing->progress_delay_s, begin, submit);
  // Injected fault delay sits between submission and network entry. With
  // no injected delay fault_end == submit exactly, so the fault component
  // is identically zero and the remaining differences are unchanged.
  const double fault_end =
      std::clamp(timing->submit_s + timing->fault_delay_s, submit, end);
  const double raw_start = timing->start_s >= 0.0 ? timing->start_s : end;
  const double start = std::clamp(raw_start, fault_end, end);
  // Completion observation can be gated too: the transfer arrived at
  // arrival_s but the block only released at `end`, when the host next
  // progressed MPI. Unset arrival (or hardware offload, where the block
  // releases at the arrival event) means arrival == end exactly.
  const double raw_arrival =
      timing->arrival_s >= 0.0 ? timing->arrival_s : end;
  const double arrival = std::clamp(raw_arrival, start, end);

  // Telescoping partition of [begin, end]: the differences sum to
  // end - begin exactly, in floating point too.
  c.dependency_s = handshake_begin - begin;
  c.progress_s = (submit - handshake_begin) + (end - arrival);
  c.fault_s = fault_end - submit;
  const double queued = start - fault_end;
  switch (timing->queue_reason) {
    case QueueReason::kOutPort:
    case QueueReason::kInPort:
      c.port_contention_s = queued;
      break;
    case QueueReason::kBus:
    case QueueReason::kNone:  // queued without a sampled reason: bus pool
      c.bus_contention_s = queued;
      break;
  }
  const double in_network = arrival - start;
  c.latency_s = std::min(timing->fixed_latency_s, in_network);
  c.wire_s = in_network - c.latency_s;
  return c;
}

}  // namespace osim::metrics
