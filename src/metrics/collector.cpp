#include "metrics/collector.hpp"

#include "common/expect.hpp"

namespace osim::metrics {

ReplayCollector::ReplayCollector(std::int32_t num_ranks,
                                 std::int32_t num_nodes)
    : rank_waits_(static_cast<std::size_t>(num_ranks)),
      in_(static_cast<std::size_t>(num_nodes)),
      out_(static_cast<std::size_t>(num_nodes)) {
  OSIM_CHECK(num_ranks > 0 && num_nodes > 0);
}

void ReplayCollector::attribute(std::int32_t rank, std::int32_t peer,
                                BlockKind kind, double begin, double end,
                                const TransferTiming* timing) {
  if (end <= begin) return;
  const WaitComponents components = decompose(begin, end, timing);
  auto& attribution = rank_waits_[static_cast<std::size_t>(rank)];
  switch (kind) {
    case BlockKind::kSend:
      attribution.send += components;
      break;
    case BlockKind::kRecv:
      attribution.recv += components;
      break;
    case BlockKind::kWait:
      attribution.wait += components;
      break;
  }
  PeerWait& pair = peer_waits_[{rank, peer}];
  pair.rank = rank;
  pair.peer = peer;
  pair.blocks++;
  pair.components += components;
}

void ReplayCollector::count_message(bool eager, std::uint64_t bytes) {
  if (eager) {
    protocol_.eager_messages++;
    protocol_.eager_bytes += bytes;
  } else {
    protocol_.rendezvous_messages++;
    protocol_.rendezvous_bytes += bytes;
  }
}

OccupancyTracker& ReplayCollector::in_tracker(std::int32_t node) {
  return in_[static_cast<std::size_t>(node)];
}

OccupancyTracker& ReplayCollector::out_tracker(std::int32_t node) {
  return out_[static_cast<std::size_t>(node)];
}

ReplayMetrics ReplayCollector::finish(double end_time) const {
  ReplayMetrics metrics;
  metrics.rank_waits = rank_waits_;
  metrics.peer_waits.reserve(peer_waits_.size());
  for (const auto& [key, pair] : peer_waits_) {
    metrics.peer_waits.push_back(pair);
  }
  metrics.bus = bus_.finish(end_time);
  metrics.node_in.reserve(in_.size());
  for (const OccupancyTracker& tracker : in_) {
    metrics.node_in.push_back(tracker.finish(end_time));
  }
  metrics.node_out.reserve(out_.size());
  for (const OccupancyTracker& tracker : out_) {
    metrics.node_out.push_back(tracker.finish(end_time));
  }
  metrics.protocol = protocol_;
  return metrics;
}

}  // namespace osim::metrics
