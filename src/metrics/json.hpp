// Minimal streaming JSON writer for the structured run reports.
//
// No external JSON dependency is available in this repo, and the reports
// only need serialization, so this is a small comma-managing emitter:
// nesting is tracked on a stack, strings are escaped per RFC 8259, doubles
// are printed with enough digits to round-trip (%.17g), and non-finite
// doubles serialize as null (JSON has no Inf/NaN).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace osim::metrics {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object key; must be followed by a value or a begin_*().
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text) { return value(std::string_view(text)); }
  JsonWriter& value(double number);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(std::uint64_t number);
  JsonWriter& value(std::int32_t number) {
    return value(static_cast<std::int64_t>(number));
  }
  JsonWriter& value(bool boolean);
  JsonWriter& null();

  /// The finished document. Valid once every begin_* has been closed.
  const std::string& str() const;

  static std::string escape(std::string_view text);

 private:
  void comma();

  std::string out_;
  std::vector<bool> needs_comma_;  // one per open scope
  bool after_key_ = false;
};

}  // namespace osim::metrics
