#include "metrics/json.hpp"

#include <cmath>
#include <cstdio>

#include "common/expect.hpp"

namespace osim::metrics {

void JsonWriter::comma() {
  if (after_key_) {
    after_key_ = false;
    return;  // value directly follows its key
  }
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_.push_back(',');
    needs_comma_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_.push_back('{');
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  OSIM_CHECK(!needs_comma_.empty() && !after_key_);
  needs_comma_.pop_back();
  out_.push_back('}');
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_.push_back('[');
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  OSIM_CHECK(!needs_comma_.empty() && !after_key_);
  needs_comma_.pop_back();
  out_.push_back(']');
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  OSIM_CHECK_MSG(!after_key_, "JSON key immediately after a key");
  comma();
  out_.push_back('"');
  out_.append(escape(name));
  out_.append("\":");
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  comma();
  out_.push_back('"');
  out_.append(escape(text));
  out_.push_back('"');
  return *this;
}

JsonWriter& JsonWriter::value(double number) {
  if (!std::isfinite(number)) return null();
  comma();
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", number);
  out_.append(buffer);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  comma();
  out_.append(std::to_string(number));
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  comma();
  out_.append(std::to_string(number));
  return *this;
}

JsonWriter& JsonWriter::value(bool boolean) {
  comma();
  out_.append(boolean ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma();
  out_.append("null");
  return *this;
}

const std::string& JsonWriter::str() const {
  OSIM_CHECK_MSG(needs_comma_.empty() && !after_key_,
                 "unterminated JSON document");
  return out_;
}

std::string JsonWriter::escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out.append("\\\"");
        break;
      case '\\':
        out.append("\\\\");
        break;
      case '\n':
        out.append("\\n");
        break;
      case '\r':
        out.append("\\r");
        break;
      case '\t':
        out.append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out.append(buffer);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace osim::metrics
