// Wait-time attribution: decomposing a blocked interval of the replay into
// the physical reasons it blocked.
//
// Every blocked span ends when one specific message transfer arrives (or,
// for a rendezvous send, when its transfer arrives at the peer). Given that
// transfer's network timing, the span decomposes exactly into:
//
//   dependency       the remote rank had not yet enabled the transfer
//                    (sender had not reached the send call / receiver had
//                    not posted the rendezvous receive)
//   fault            injected fault delay (message loss retransmission
//                    backoff) between submission and network entry
//   bus contention   the transfer was queued because the global bus pool
//                    was exhausted
//   port contention  the transfer was queued on a node input/output port
//   wire             serialization time (bytes / bandwidth, plus any
//                    per-message endpoint overhead)
//   latency          the fixed per-message network latency
//   progress         time the MPI progress engine sat idle: the rendezvous
//                    handshake waited for a host to reach an MPI call, or
//                    the transfer had arrived but its completion was only
//                    observed at the host's next enter-MPI event
//                    (application-driven progress regime)
//
// decompose() partitions [begin, end] with telescoping differences, so the
// components always sum to exactly end - begin. The fault and progress
// components are identically zero (and absent from reports) when fault
// injection / the progress axis are off.
#pragma once

#include <cstdint>

namespace osim::metrics {

/// Why a transfer could not start when it was handed to the network.
/// Sampled once, right after submission; the whole queueing delay is
/// attributed to the resource that was exhausted at that instant.
enum class QueueReason : std::uint8_t { kNone, kBus, kOutPort, kInPort };

const char* queue_reason_name(QueueReason reason);

/// Network-side timing of one transfer, filled in by the replay engine as
/// the transfer moves through the network model. Negative timestamps mean
/// "not reached".
struct TransferTiming {
  double submit_s = -1.0;  // handed to the network model
  double start_s = -1.0;   // resources acquired / flow activated
  double fixed_latency_s = 0.0;  // model's fixed per-message delay
  /// Injected fault delay (retransmission backoff) between submission and
  /// network entry; 0 unless fault injection dropped the message.
  double fault_delay_s = 0.0;
  /// Time the rendezvous handshake spent waiting on the MPI progress
  /// engine before submission; 0 unless the application-driven regime
  /// gated it (dimemas/progress.hpp).
  double progress_delay_s = 0.0;
  /// When the transfer's last byte arrived. Under hardware offload the
  /// released block ends at this instant, so arrival_s == end and the
  /// progress component is exactly zero; under application-driven
  /// progress the gap until `end` is progress-engine idle time.
  double arrival_s = -1.0;
  QueueReason queue_reason = QueueReason::kNone;
};

/// Blocked-time decomposition, in seconds. See the file comment.
struct WaitComponents {
  double dependency_s = 0.0;
  double fault_s = 0.0;
  double bus_contention_s = 0.0;
  double port_contention_s = 0.0;
  double wire_s = 0.0;
  double latency_s = 0.0;
  double progress_s = 0.0;

  double total_s() const {
    return dependency_s + fault_s + bus_contention_s + port_contention_s +
           wire_s + latency_s + progress_s;
  }
  WaitComponents& operator+=(const WaitComponents& other);
};

/// Decomposes the blocked interval [begin, end] that was released by the
/// transfer described by `timing`. A null timing (no releasing transfer is
/// known) attributes the whole span to the dependency component.
WaitComponents decompose(double begin, double end,
                         const TransferTiming* timing);

}  // namespace osim::metrics
