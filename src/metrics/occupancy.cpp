#include "metrics/occupancy.hpp"

#include <algorithm>

#include "common/expect.hpp"

namespace osim::metrics {

namespace {

void add_span(std::vector<double>& histogram, std::int64_t level,
              double seconds) {
  if (seconds <= 0.0) return;
  const auto slot = static_cast<std::size_t>(level);
  if (histogram.size() <= slot) histogram.resize(slot + 1, 0.0);
  histogram[slot] += seconds;
}

}  // namespace

void OccupancyTracker::set_level(double now, std::int64_t level) {
  OSIM_CHECK_MSG(now >= last_change_, "occupancy level set in the past");
  OSIM_CHECK_MSG(level >= 0, "negative occupancy level");
  touched_ = true;
  add_span(histogram_, level_, now - last_change_);
  last_change_ = now;
  if (level != level_) {
    samples_.push_back(OccupancySample{now, level});
    level_ = level;
    peak_ = std::max(peak_, level);
  }
}

OccupancyStats OccupancyTracker::finish(double end) const {
  OccupancyStats stats;
  stats.tracked = touched_;
  stats.capacity = capacity_;
  stats.peak = peak_;
  stats.histogram = histogram_;
  add_span(stats.histogram, level_, end - last_change_);
  stats.samples = samples_;

  double level_seconds = 0.0;
  double busy = 0.0;
  for (std::size_t l = 0; l < stats.histogram.size(); ++l) {
    level_seconds += static_cast<double>(l) * stats.histogram[l];
    if (l > 0) busy += stats.histogram[l];
  }
  stats.busy_s = busy;
  if (end > 0.0) stats.mean_level = level_seconds / end;
  if (capacity_ > 0) {
    stats.utilization = stats.mean_level / static_cast<double>(capacity_);
  }
  return stats;
}

}  // namespace osim::metrics
