// The aggregated observability output of one replay: per-rank and per-peer
// wait-time attribution, resource-occupancy statistics, and protocol
// counters. Produced by metrics::ReplayCollector when
// dimemas::ReplayOptions::collect_metrics is set; carried on
// dimemas::SimResult and serialized by pipeline/report.
#pragma once

#include <cstdint>
#include <vector>

#include "metrics/attribution.hpp"
#include "metrics/occupancy.hpp"

namespace osim::metrics {

/// Which kind of blocked span an attribution belongs to; mirrors the
/// send/recv/wait split of dimemas::RankStats.
enum class BlockKind : std::uint8_t { kSend = 0, kRecv = 1, kWait = 2 };

/// One rank's attributed blocked time. Each member's total_s() equals the
/// matching RankStats counter (send_blocked_s / recv_blocked_s /
/// wait_blocked_s) up to floating-point accumulation order.
struct RankWaitAttribution {
  WaitComponents send;
  WaitComponents recv;
  WaitComponents wait;

  WaitComponents total() const {
    WaitComponents t = send;
    t += recv;
    t += wait;
    return t;
  }
};

/// Attributed blocked time of `rank` over the spans released by `peer`.
/// peer == -1 collects spans whose releasing transfer was unknown.
struct PeerWait {
  std::int32_t rank = -1;
  std::int32_t peer = -1;
  std::uint64_t blocks = 0;  // blocked spans released by this peer
  WaitComponents components;
};

struct ProtocolCounts {
  std::uint64_t eager_messages = 0;
  std::uint64_t rendezvous_messages = 0;
  std::uint64_t eager_bytes = 0;
  std::uint64_t rendezvous_bytes = 0;
};

struct ReplayMetrics {
  /// One entry per rank.
  std::vector<RankWaitAttribution> rank_waits;
  /// Sorted by (rank, peer); only pairs that actually blocked appear.
  std::vector<PeerWait> peer_waits;
  /// Global bus pool (bus model) or concurrent-flow count (fair-share).
  OccupancyStats bus;
  /// Per-node port occupancy; empty histograms when the network model has
  /// no port stage (fair-share).
  std::vector<OccupancyStats> node_in;
  std::vector<OccupancyStats> node_out;
  ProtocolCounts protocol;
};

}  // namespace osim::metrics
