// ReplayCollector — the aggregation sink behind the replay engine's
// instrumentation hooks.
//
// The replay engine owns one collector per run (only when
// ReplayOptions::collect_metrics is set) and feeds it three streams:
// blocked-interval attributions from unblock(), protocol counts from the
// send path, and occupancy levels pushed by the network model. All methods
// are passive accumulators — a collector never changes simulated time or
// event order, which is what keeps replay results bit-identical with
// collection on or off.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "metrics/attribution.hpp"
#include "metrics/occupancy.hpp"
#include "metrics/replay_metrics.hpp"

namespace osim::metrics {

class ReplayCollector {
 public:
  ReplayCollector(std::int32_t num_ranks, std::int32_t num_nodes);

  /// Attributes the blocked span [begin, end] of `rank`, released by a
  /// transfer with `timing` whose other end was `peer` (-1 = unknown).
  void attribute(std::int32_t rank, std::int32_t peer, BlockKind kind,
                 double begin, double end, const TransferTiming* timing);

  void count_message(bool eager, std::uint64_t bytes);

  OccupancyTracker& bus_tracker() { return bus_; }
  OccupancyTracker& in_tracker(std::int32_t node);
  OccupancyTracker& out_tracker(std::int32_t node);

  /// Closes all occupancy timelines at `end_time` and assembles the final
  /// metrics. Call once, after the replay finished.
  ReplayMetrics finish(double end_time) const;

 private:
  std::vector<RankWaitAttribution> rank_waits_;
  // Ordered map for a deterministic, sorted peer_waits output.
  std::map<std::pair<std::int32_t, std::int32_t>, PeerWait> peer_waits_;
  OccupancyTracker bus_;
  std::vector<OccupancyTracker> in_;
  std::vector<OccupancyTracker> out_;
  ProtocolCounts protocol_;
};

}  // namespace osim::metrics
