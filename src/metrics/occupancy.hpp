// Time-weighted resource-occupancy tracking for the replay engine.
//
// An OccupancyTracker follows one integer-valued resource level (messages on
// the global bus pool, transfers holding a node's input or output ports)
// through simulated time and accumulates a time-weighted histogram of the
// levels it visited, plus the change log needed to render the occupancy as
// a Paraver counter timeline. Tracking is passive: it never schedules
// events, so enabling it cannot perturb a replay.
#pragma once

#include <cstdint>
#include <vector>

namespace osim::metrics {

/// One level change, in simulated seconds (for counter timelines).
struct OccupancySample {
  double time_s = 0.0;
  std::int64_t level = 0;
};

/// Finished occupancy statistics over a simulated time span [0, end].
struct OccupancyStats {
  bool tracked = false;        // false = the resource was never observed
  std::int64_t capacity = 0;   // 0 = unbounded
  std::int64_t peak = 0;       // highest level seen
  double mean_level = 0.0;     // time-weighted mean over [0, end]
  double busy_s = 0.0;         // time spent at level > 0
  /// mean_level / capacity; 0 when the capacity is unbounded.
  double utilization = 0.0;
  /// histogram[l] = seconds spent at exactly level l.
  std::vector<double> histogram;
  /// Level-change log in time order (first entry is the first change).
  std::vector<OccupancySample> samples;
};

class OccupancyTracker {
 public:
  void set_capacity(std::int64_t capacity) { capacity_ = capacity; }

  /// Records that the level changed to `level` at simulated time `now`.
  /// Times must be non-decreasing across calls.
  void set_level(double now, std::int64_t level);

  bool tracked() const { return touched_; }

  /// Closes the timeline at `end` and returns the accumulated statistics.
  OccupancyStats finish(double end) const;

 private:
  std::int64_t capacity_ = 0;
  std::int64_t level_ = 0;
  std::int64_t peak_ = 0;
  double last_change_ = 0.0;
  bool touched_ = false;
  std::vector<double> histogram_;  // closed intervals only
  std::vector<OccupancySample> samples_;
};

}  // namespace osim::metrics
