#include "common/table.hpp"

#include <algorithm>
#include <sstream>

#include "common/expect.hpp"
#include "common/strings.hpp"

namespace osim {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  OSIM_CHECK(!headers_.empty());
  aligns_.assign(headers_.size(), Align::kRight);
  aligns_[0] = Align::kLeft;
}

void TextTable::set_align(size_t column, Align align) {
  OSIM_CHECK(column < aligns_.size());
  aligns_[column] = align;
}

void TextTable::add_row(std::vector<std::string> cells) {
  OSIM_CHECK_MSG(cells.size() == headers_.size(),
                 "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  if (!title_.empty()) os << title_ << "\n";

  auto emit_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t c = 0; c < row.size(); ++c) {
      const size_t pad = widths[c] - row[c].size();
      os << ' ';
      if (aligns_[c] == Align::kRight) os << std::string(pad, ' ');
      os << row[c];
      if (aligns_[c] == Align::kLeft) os << std::string(pad, ' ');
      os << " |";
    }
    os << "\n";
  };

  auto emit_rule = [&]() {
    os << "+";
    for (const size_t w : widths) os << std::string(w + 2, '-') << "+";
    os << "\n";
  };

  emit_rule();
  emit_row(headers_);
  emit_rule();
  for (const auto& row : rows_) emit_row(row);
  emit_rule();
  return os.str();
}

std::string cell(double value, int digits) {
  return strprintf("%.*g", digits, value);
}

std::string cell_percent(double fraction, int decimals) {
  return strprintf("%.*f%%", decimals, fraction * 100.0);
}

}  // namespace osim
