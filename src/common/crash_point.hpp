// Crash-point injection for durability tests. Cold code on the store's
// publication and the journal's append paths calls maybe_crash("name");
// setting OSIM_CRASH_POINT=name (or name:N for the Nth hit) makes that
// call SIGKILL the process on the spot — the same abrupt death as a
// kill -9 or power loss, with none of the destructor/atexit cleanup a
// normal exit would run. Tests then assert the invariant the atomic
// temp+rename protocol promises: after any crash, a reader sees either
// a valid object or a clean miss, never a torn read.
//
// The environment is re-read on every call (these are cold paths — one
// getenv per store publication is noise) so death tests can flip the
// variable per-subprocess without caching surprises. Unset, the cost is
// one getenv returning null.
#pragma once

namespace osim {

/// Dies via SIGKILL when OSIM_CRASH_POINT selects this point.
/// `point` is a stable dotted name, e.g. "store.publish.tmp".
/// OSIM_CRASH_POINT grammar: "<name>" (first hit) or "<name>:N"
/// (Nth hit of that name in this process, 1-based).
void maybe_crash(const char* point);

}  // namespace osim
