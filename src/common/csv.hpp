// CSV writer for experiment outputs (each bench also writes machine-readable
// series next to the human-readable table).
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace osim {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  /// Throws osim::Error if the file cannot be created.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// In-memory mode (for tests): no file, contents via str().
  explicit CsvWriter(const std::vector<std::string>& header);

  void add_row(const std::vector<std::string>& cells);

  /// Full contents written so far (valid in both modes).
  const std::string& str() const { return buffer_; }

  /// Flushes to disk (no-op in in-memory mode). Called by the destructor.
  void flush();

  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

 private:
  void write_row(const std::vector<std::string>& cells);
  static std::string escape(const std::string& cell);

  size_t columns_;
  std::string buffer_;
  size_t flushed_ = 0;  // bytes of buffer_ already written to file_
  std::ofstream file_;
  bool has_file_ = false;
};

}  // namespace osim
