// Tiny command-line flag parser for the bench / example binaries.
//
// Accepted syntax: --name=value or --name value; bare --name for booleans
// (explicit --name=true/false/1/0 also works). A flag repeated on the
// command line is applied left to right, so the last occurrence wins —
// convenient for overriding a scripted default. Unknown flags and
// malformed values raise osim::UsageError naming the offending flag —
// with a "did you mean --x?" suggestion when a registered flag is within
// edit distance 2 — and listing the registered flags, so every binary
// gets a usable --help for free.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace osim {

class Flags {
 public:
  /// `description` is printed in --help output.
  explicit Flags(std::string description);

  /// Registration: call before parse(). The pointer must outlive parse().
  void add(const std::string& name, std::string* target,
           const std::string& help);
  void add(const std::string& name, std::int64_t* target,
           const std::string& help);
  void add(const std::string& name, double* target, const std::string& help);
  void add(const std::string& name, bool* target, const std::string& help);

  /// Parses argv. On --help, prints usage and returns false (caller should
  /// exit 0). Throws osim::UsageError on unknown flags or bad values.
  bool parse(int argc, const char* const* argv);

  std::string usage() const;

  /// Registered flag closest to `name` within edit distance 2, or "" when
  /// nothing is close enough to suggest.
  std::string suggestion(const std::string& name) const;

 private:
  enum class Kind { kString, kInt, kDouble, kBool };
  struct Entry {
    Kind kind;
    void* target;
    std::string help;
    std::string default_repr;
  };

  void set_value(const std::string& name, Entry& entry,
                 const std::string& value);
  static std::string cellrepr(double v);

  std::string description_;
  std::string program_;
  std::map<std::string, Entry> entries_;
};

}  // namespace osim
