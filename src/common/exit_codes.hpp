// Exit-code contract shared by every osim_* tool, so scripts and CI can
// branch on *why* a tool stopped without parsing stderr:
//
//   0  success; output is complete and trustworthy
//   1  runtime failure (invalid trace semantics, I/O error, bad config)
//   2  usage error: the command line itself was wrong (unknown flag,
//      malformed value, missing required flag) — see osim::UsageError
//   3  input trace unreadable: nothing could be salvaged from it
//   4  input trace was damaged but salvaged (--recover); results reflect
//      only the recovered prefix
//   5  interrupted: a supervised run stopped early (SIGINT/SIGTERM or
//      --study-deadline). Any flushed report is a valid partial document
//      with "status": "interrupted" — trustworthy, but not the full sweep
//   6  busy: the analysis service refused the request under admission
//      control (queue depth or in-flight byte budget exhausted). The
//      request was never accepted — resubmitting later is safe
//
// Keep the numbers stable: scripts/pipeline_test.sh,
// scripts/resilience_test.sh and scripts/serve_test.sh assert them.
#pragma once

namespace osim {

inline constexpr int kExitOk = 0;
inline constexpr int kExitError = 1;
inline constexpr int kExitUsage = 2;
inline constexpr int kExitUnreadable = 3;
inline constexpr int kExitSalvaged = 4;
inline constexpr int kExitInterrupted = 5;
inline constexpr int kExitBusy = 6;

}  // namespace osim
