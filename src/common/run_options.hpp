// Shared command-line surface for every binary that runs replays: the
// bench executables, osim_replay and osim_lint all take the same trio of
// execution flags (--jobs, --cache-dir, --perf-json) plus a JSON report
// path whose name varies per binary ("study-report" for benches, "report"
// for osim_replay; osim_lint has no report file at all). Before this
// struct, each binary registered its own copies and the help strings had
// drifted; now they register one RunOptions and the flags stay word-for-
// word identical everywhere (unknown-flag typos still get common/Flags'
// "did you mean" suggestions for free).
//
// --perf-json writes a small machine-readable performance record of the
// invocation (wall clock, CPU time, peak RSS, plus tool-specific counters)
// — the lightweight sibling of the tools/osim_perf harness, for tracking a
// single run instead of a calibrated benchmark.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/flags.hpp"

namespace osim {

struct RunOptions {
  /// Parallel jobs for Study / lint pools (0 = one per hardware thread).
  std::int64_t jobs = 1;
  /// Persistent scenario store directory ($OSIM_CACHE_DIR when empty).
  std::string cache_dir;
  /// JSON report path; the flag name is per-binary (see register_flags).
  std::string report;
  /// Performance record path (--perf-json); empty = don't write one.
  std::string perf_json;

  /// Registers the shared flags. `report_flag` names this binary's report
  /// flag ("study-report", "report", ...) with `report_help` as its help
  /// text; pass report_flag == nullptr for binaries without a report file.
  void register_flags(Flags& flags, const char* report_flag,
                      const std::string& report_help);

  /// --jobs with the 0 = hardware-threads convention resolved.
  int resolved_jobs() const;
};

/// Wall-clock + rusage performance record written by --perf-json. Construct
/// at startup (it samples the clock), add() tool-specific counters, then
/// write_if() at exit.
class PerfRecorder {
 public:
  /// `tool` is recorded verbatim (binary name, e.g. "osim_replay").
  explicit PerfRecorder(std::string tool);

  /// Adds a tool-specific numeric counter (insertion order is preserved).
  void add(const std::string& key, double value);

  /// Writes the record to `path`; no-op when `path` is empty. Throws
  /// osim::Error if the file cannot be written.
  void write_if(const std::string& path) const;

 private:
  std::string tool_;
  std::chrono::steady_clock::time_point start_;
  std::vector<std::pair<std::string, double>> counters_;
};

}  // namespace osim
