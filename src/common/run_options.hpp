// Shared command-line surface for every binary that runs replays: the
// bench executables, osim_replay and osim_lint all take the same trio of
// execution flags (--jobs, --cache-dir, --perf-json) plus a JSON report
// path whose name varies per binary ("study-report" for benches, "report"
// for osim_replay; osim_lint has no report file at all). Before this
// struct, each binary registered its own copies and the help strings had
// drifted; now they register one RunOptions and the flags stay word-for-
// word identical everywhere (unknown-flag typos still get common/Flags'
// "did you mean" suggestions for free).
//
// --perf-json writes a small machine-readable performance record of the
// invocation (wall clock, CPU time, peak RSS, plus tool-specific counters)
// — the lightweight sibling of the tools/osim_perf harness, for tracking a
// single run instead of a calibrated benchmark.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/flags.hpp"

namespace osim {

struct RunOptions {
  /// Parallel jobs for Study / lint pools (0 = one per hardware thread).
  std::int64_t jobs = 1;
  /// Persistent scenario store directory ($OSIM_CACHE_DIR when empty).
  std::string cache_dir;
  /// JSON report path; the flag name is per-binary (see register_flags).
  std::string report;
  /// Performance record path (--perf-json); empty = don't write one.
  std::string perf_json;

  // --- Supervision (register_supervision_flags; all off by default, and
  // when off the run is byte-identical to a pre-supervision binary) ---

  /// Per-scenario wall-clock budget in seconds (0 = unbounded).
  double scenario_timeout_s = 0.0;
  /// Whole-run wall-clock budget in seconds (0 = unbounded).
  double study_deadline_s = 0.0;
  /// In-memory replay-cache budget, e.g. "64M", "1G", "4096" (bytes);
  /// empty = unbounded. Under pressure results evict to the disk store.
  std::string memory_budget;
  /// Write a study journal so a killed run can be resumed (--journal).
  bool journal = false;
  /// Skip scenarios the journal already records as done (--resume;
  /// implies --journal).
  bool resume = false;
  /// Emit the canonical study report (deterministic fields only), so an
  /// interrupted+resumed run can be diffed against an uninterrupted one.
  bool canonical_report = false;

  /// Registers the shared flags. `report_flag` names this binary's report
  /// flag ("study-report", "report", ...) with `report_help` as its help
  /// text; pass report_flag == nullptr for binaries without a report file.
  void register_flags(Flags& flags, const char* report_flag,
                      const std::string& report_help);

  /// Registers the supervision flags (--scenario-timeout, --study-deadline,
  /// --memory-budget, --journal, --resume, --canonical-report). Separate
  /// from register_flags so binaries adopt supervision deliberately.
  void register_supervision_flags(Flags& flags);

  /// True when any supervision flag was set — callers use this to decide
  /// whether to install signal handlers and emit status fields.
  bool supervision_requested() const;

  /// --jobs with the 0 = hardware-threads convention resolved.
  int resolved_jobs() const;

  /// --memory-budget parsed to bytes (suffixes K/M/G, base 1024; plain
  /// number = bytes). 0 = unbounded. Throws UsageError on bad syntax.
  std::int64_t memory_budget_bytes() const;
};

/// Wall-clock + rusage performance record written by --perf-json. Construct
/// at startup (it samples the clock), add() tool-specific counters, then
/// write_if() at exit.
class PerfRecorder {
 public:
  /// `tool` is recorded verbatim (binary name, e.g. "osim_replay").
  explicit PerfRecorder(std::string tool);

  /// Adds a tool-specific numeric counter (insertion order is preserved).
  void add(const std::string& key, double value);

  /// Writes the record to `path`; no-op when `path` is empty. Throws
  /// osim::Error if the file cannot be written.
  void write_if(const std::string& path) const;

 private:
  std::string tool_;
  std::chrono::steady_clock::time_point start_;
  std::vector<std::pair<std::string, double>> counters_;
};

}  // namespace osim
