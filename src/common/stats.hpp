// Descriptive statistics over small samples (pattern percentiles, averages
// across messages, etc.).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace osim {

double mean(std::span<const double> xs);
double variance(std::span<const double> xs);  // population variance
double stddev(std::span<const double> xs);
double min_of(std::span<const double> xs);
double max_of(std::span<const double> xs);

/// Linear-interpolated percentile, p in [0, 100]. xs need not be sorted.
double percentile(std::span<const double> xs, double p);

double median(std::span<const double> xs);

/// Geometric mean; all inputs must be > 0.
double geomean(std::span<const double> xs);

/// Online accumulator when samples stream in one at a time.
class RunningStats {
 public:
  void add(double x);
  size_t count() const { return n_; }
  double mean() const;
  double variance() const;  // population variance
  double min() const;
  double max() const;
  double sum() const { return sum_; }

 private:
  size_t n_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace osim
