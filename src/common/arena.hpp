// Arena — a chunked monotonic allocator for per-run bookkeeping objects.
//
// The replay engine creates one SendSide / PostedRecv / CommEvent per
// message and frees them all when the run ends. Allocating each through
// make_unique costs a malloc/free pair per message and scatters the
// objects across the heap; the arena hands them out bump-pointer style
// from large chunks, so allocation is a pointer increment and objects
// created together sit together. Everything is released at once when the
// arena is destroyed — there is no per-object free, which is why only
// trivially-destructible types are accepted.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace osim {

class Arena {
 public:
  explicit Arena(std::size_t chunk_bytes = 64 * 1024)
      : chunk_bytes_(chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Constructs a T in the arena. The pointer is stable for the arena's
  /// lifetime; no destructor ever runs (hence the trivially-destructible
  /// requirement).
  template <typename T, typename... ArgTs>
  T* make(ArgTs&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena objects are freed wholesale; destructors never run");
    static_assert(alignof(T) <= alignof(std::max_align_t),
                  "over-aligned types would need aligned chunk storage");
    void* p = allocate(sizeof(T), alignof(T));
    return ::new (p) T(std::forward<ArgTs>(args)...);
  }

  std::size_t bytes_allocated() const { return allocated_; }

 private:
  void* allocate(std::size_t size, std::size_t align) {
    std::size_t misalign = reinterpret_cast<std::uintptr_t>(cur_) & (align - 1);
    std::size_t pad = misalign == 0 ? 0 : align - misalign;
    if (left_ < size + pad) {
      const std::size_t chunk = size > chunk_bytes_ ? size : chunk_bytes_;
      // operator new returns max_align_t-aligned storage, enough for any
      // type the replay engine arenas.
      chunks_.push_back(std::make_unique<unsigned char[]>(chunk));
      cur_ = chunks_.back().get();
      left_ = chunk;
      pad = 0;
    }
    cur_ += pad;
    left_ -= pad;
    void* p = cur_;
    cur_ += size;
    left_ -= size;
    allocated_ += size + pad;
    return p;
  }

  std::size_t chunk_bytes_;
  std::vector<std::unique_ptr<unsigned char[]>> chunks_;
  unsigned char* cur_ = nullptr;
  std::size_t left_ = 0;
  std::size_t allocated_ = 0;
};

}  // namespace osim
