#include "common/flags.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <vector>

#include "common/expect.hpp"
#include "common/strings.hpp"

namespace osim {

Flags::Flags(std::string description) : description_(std::move(description)) {}

void Flags::add(const std::string& name, std::string* target,
                const std::string& help) {
  entries_[name] = Entry{Kind::kString, target, help, "\"" + *target + "\""};
}

void Flags::add(const std::string& name, std::int64_t* target,
                const std::string& help) {
  entries_[name] = Entry{Kind::kInt, target, help, std::to_string(*target)};
}

void Flags::add(const std::string& name, double* target,
                const std::string& help) {
  entries_[name] = Entry{Kind::kDouble, target, help, cellrepr(*target)};
}

void Flags::add(const std::string& name, bool* target,
                const std::string& help) {
  entries_[name] =
      Entry{Kind::kBool, target, help, *target ? "true" : "false"};
}

std::string Flags::cellrepr(double v) { return strprintf("%g", v); }

namespace {

/// Levenshtein distance, early-exiting once the best possible outcome
/// exceeds `cap` (we only care about distances <= 2 for suggestions).
std::size_t edit_distance_capped(const std::string& a, const std::string& b,
                                 std::size_t cap) {
  const std::size_t la = a.size();
  const std::size_t lb = b.size();
  if (la > lb + cap || lb > la + cap) return cap + 1;
  std::vector<std::size_t> row(lb + 1);
  for (std::size_t j = 0; j <= lb; ++j) row[j] = j;
  for (std::size_t i = 1; i <= la; ++i) {
    std::size_t prev = row[0];  // row[i-1][j-1]
    row[0] = i;
    std::size_t best = row[0];
    for (std::size_t j = 1; j <= lb; ++j) {
      const std::size_t subst = prev + (a[i - 1] == b[j - 1] ? 0 : 1);
      prev = row[j];
      row[j] = std::min({subst, row[j] + 1, row[j - 1] + 1});
      best = std::min(best, row[j]);
    }
    if (best > cap) return cap + 1;
  }
  return row[lb];
}

}  // namespace

std::string Flags::suggestion(const std::string& name) const {
  constexpr std::size_t kMaxDistance = 2;
  std::string best;
  std::size_t best_distance = kMaxDistance + 1;
  for (const auto& [candidate, entry] : entries_) {
    const std::size_t d =
        edit_distance_capped(name, candidate, kMaxDistance);
    if (d < best_distance) {
      best_distance = d;
      best = candidate;
    }
  }
  return best;
}

void Flags::set_value(const std::string& name, Entry& entry,
                      const std::string& value) {
  switch (entry.kind) {
    case Kind::kString:
      *static_cast<std::string*>(entry.target) = value;
      return;
    case Kind::kInt: {
      const auto parsed = parse_i64(value);
      if (!parsed) {
        throw UsageError("flag --" + name + ": bad integer '" + value + "'");
      }
      *static_cast<std::int64_t*>(entry.target) = *parsed;
      return;
    }
    case Kind::kDouble: {
      const auto parsed = parse_f64(value);
      if (!parsed) {
        throw UsageError("flag --" + name + ": bad number '" + value + "'");
      }
      *static_cast<double*>(entry.target) = *parsed;
      return;
    }
    case Kind::kBool: {
      if (value == "true" || value == "1" || value.empty()) {
        *static_cast<bool*>(entry.target) = true;
      } else if (value == "false" || value == "0") {
        *static_cast<bool*>(entry.target) = false;
      } else {
        throw UsageError("flag --" + name + ": bad boolean '" + value + "'");
      }
      return;
    }
  }
  OSIM_UNREACHABLE("bad flag kind");
}

bool Flags::parse(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    if (!starts_with(arg, "--")) {
      throw UsageError("unexpected positional argument '" + arg + "'\n" +
                       usage());
    }
    arg = arg.substr(2);
    std::string name = arg;
    std::string value;
    bool have_value = false;
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      have_value = true;
    }
    const auto it = entries_.find(name);
    if (it == entries_.end()) {
      std::string message = "unknown flag --" + name;
      if (const std::string near = suggestion(name); !near.empty()) {
        message += " (did you mean --" + near + "?)";
      }
      throw UsageError(message + "\n" + usage());
    }
    if (!have_value && it->second.kind != Kind::kBool) {
      if (i + 1 >= argc) {
        throw UsageError("flag --" + name + " needs a value");
      }
      value = argv[++i];
    }
    set_value(name, it->second, value);
  }
  return true;
}

std::string Flags::usage() const {
  std::ostringstream os;
  os << description_ << "\n";
  if (!program_.empty()) os << "usage: " << program_ << " [flags]\n";
  os << "flags:\n";
  for (const auto& [name, entry] : entries_) {
    os << "  --" << name << "  " << entry.help
       << " (default: " << entry.default_repr << ")\n";
  }
  return os.str();
}

}  // namespace osim
