#include "common/flags.hpp"

#include <cstdio>
#include <sstream>

#include "common/expect.hpp"
#include "common/strings.hpp"

namespace osim {

Flags::Flags(std::string description) : description_(std::move(description)) {}

void Flags::add(const std::string& name, std::string* target,
                const std::string& help) {
  entries_[name] = Entry{Kind::kString, target, help, "\"" + *target + "\""};
}

void Flags::add(const std::string& name, std::int64_t* target,
                const std::string& help) {
  entries_[name] = Entry{Kind::kInt, target, help, std::to_string(*target)};
}

void Flags::add(const std::string& name, double* target,
                const std::string& help) {
  entries_[name] = Entry{Kind::kDouble, target, help, cellrepr(*target)};
}

void Flags::add(const std::string& name, bool* target,
                const std::string& help) {
  entries_[name] =
      Entry{Kind::kBool, target, help, *target ? "true" : "false"};
}

std::string Flags::cellrepr(double v) { return strprintf("%g", v); }

void Flags::set_value(const std::string& name, Entry& entry,
                      const std::string& value) {
  switch (entry.kind) {
    case Kind::kString:
      *static_cast<std::string*>(entry.target) = value;
      return;
    case Kind::kInt: {
      const auto parsed = parse_i64(value);
      if (!parsed) throw Error("flag --" + name + ": bad integer '" + value + "'");
      *static_cast<std::int64_t*>(entry.target) = *parsed;
      return;
    }
    case Kind::kDouble: {
      const auto parsed = parse_f64(value);
      if (!parsed) throw Error("flag --" + name + ": bad number '" + value + "'");
      *static_cast<double*>(entry.target) = *parsed;
      return;
    }
    case Kind::kBool: {
      if (value == "true" || value == "1" || value.empty()) {
        *static_cast<bool*>(entry.target) = true;
      } else if (value == "false" || value == "0") {
        *static_cast<bool*>(entry.target) = false;
      } else {
        throw Error("flag --" + name + ": bad boolean '" + value + "'");
      }
      return;
    }
  }
  OSIM_UNREACHABLE("bad flag kind");
}

bool Flags::parse(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    if (!starts_with(arg, "--")) {
      throw Error("unexpected positional argument '" + arg + "'\n" + usage());
    }
    arg = arg.substr(2);
    std::string name = arg;
    std::string value;
    bool have_value = false;
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      have_value = true;
    }
    const auto it = entries_.find(name);
    if (it == entries_.end()) {
      throw Error("unknown flag --" + name + "\n" + usage());
    }
    if (!have_value && it->second.kind != Kind::kBool) {
      if (i + 1 >= argc) throw Error("flag --" + name + " needs a value");
      value = argv[++i];
    }
    set_value(name, it->second, value);
  }
  return true;
}

std::string Flags::usage() const {
  std::ostringstream os;
  os << description_ << "\n";
  if (!program_.empty()) os << "usage: " << program_ << " [flags]\n";
  os << "flags:\n";
  for (const auto& [name, entry] : entries_) {
    os << "  --" << name << "  " << entry.help
       << " (default: " << entry.default_repr << ")\n";
  }
  return os.str();
}

}  // namespace osim
