// Minimal leveled logger. Single global sink (stderr by default); thread-safe.
//
// Usage:
//   osim::log::info("replay finished in {} s", 1.25);   // {} placeholders
//   osim::log::set_level(osim::log::Level::kDebug);
#pragma once

#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

namespace osim::log {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the minimum level that gets emitted. Default: kWarn (quiet for tests).
void set_level(Level level);
Level level();

/// Redirects log output to an in-memory buffer (for tests). Pass nullptr to
/// restore stderr.
void set_capture(std::string* sink);

namespace detail {

void emit(Level level, const std::string& message);

inline void format_into(std::ostringstream& os, std::string_view fmt) {
  os << fmt;
}

template <typename T, typename... Rest>
void format_into(std::ostringstream& os, std::string_view fmt, const T& head,
                 const Rest&... rest) {
  const size_t pos = fmt.find("{}");
  if (pos == std::string_view::npos) {
    os << fmt;
    return;
  }
  os << fmt.substr(0, pos) << head;
  format_into(os, fmt.substr(pos + 2), rest...);
}

template <typename... Args>
void logf(Level lvl, std::string_view fmt, const Args&... args) {
  if (lvl < level()) return;
  std::ostringstream os;
  format_into(os, fmt, args...);
  emit(lvl, os.str());
}

}  // namespace detail

template <typename... Args>
void debug(std::string_view fmt, const Args&... args) {
  detail::logf(Level::kDebug, fmt, args...);
}
template <typename... Args>
void info(std::string_view fmt, const Args&... args) {
  detail::logf(Level::kInfo, fmt, args...);
}
template <typename... Args>
void warn(std::string_view fmt, const Args&... args) {
  detail::logf(Level::kWarn, fmt, args...);
}
template <typename... Args>
void error(std::string_view fmt, const Args&... args) {
  detail::logf(Level::kError, fmt, args...);
}

}  // namespace osim::log
