#include "common/strings.hpp"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace osim {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_ws(std::string_view text) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
    const size_t start = i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i])))
      ++i;
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string_view trim(std::string_view text) {
  size_t b = 0;
  size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

namespace {

// strtoX wrappers need a NUL-terminated buffer; string_views into larger
// buffers are copied first.
template <typename T, typename Fn>
std::optional<T> parse_with(std::string_view text, Fn fn) {
  const std::string buf{trim(text)};
  if (buf.empty()) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const T value = fn(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return std::nullopt;
  return value;
}

}  // namespace

std::optional<std::int64_t> parse_i64(std::string_view text) {
  return parse_with<std::int64_t>(text, [](const char* s, char** end) {
    return static_cast<std::int64_t>(std::strtoll(s, end, 10));
  });
}

std::optional<std::uint64_t> parse_u64(std::string_view text) {
  const auto trimmed = trim(text);
  if (!trimmed.empty() && trimmed.front() == '-') return std::nullopt;
  return parse_with<std::uint64_t>(trimmed, [](const char* s, char** end) {
    return static_cast<std::uint64_t>(std::strtoull(s, end, 10));
  });
}

std::optional<double> parse_f64(std::string_view text) {
  return parse_with<double>(
      text, [](const char* s, char** end) { return std::strtod(s, end); });
}

std::string strprintf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, args_copy);
    out.resize(static_cast<size_t>(needed));
  }
  va_end(args_copy);
  return out;
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < items.size(); ++i) {
    if (i != 0) out.append(sep);
    out.append(items[i]);
  }
  return out;
}

std::string format_seconds(double seconds) {
  const double abs = seconds < 0 ? -seconds : seconds;
  if (abs == 0.0) return "0 s";
  if (abs < 1e-6) return strprintf("%.3g ns", seconds * 1e9);
  if (abs < 1e-3) return strprintf("%.3g us", seconds * 1e6);
  if (abs < 1.0) return strprintf("%.3g ms", seconds * 1e3);
  return strprintf("%.4g s", seconds);
}

std::string format_bytes(double bytes) {
  const double abs = bytes < 0 ? -bytes : bytes;
  if (abs < 1e3) return strprintf("%.0f B", bytes);
  if (abs < 1e6) return strprintf("%.3g KB", bytes / 1e3);
  if (abs < 1e9) return strprintf("%.3g MB", bytes / 1e6);
  return strprintf("%.3g GB", bytes / 1e9);
}

}  // namespace osim
