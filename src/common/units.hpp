// Physical units used across the simulator.
//
// Internal conventions (see DESIGN.md §6):
//   * simulated time      — double, seconds
//   * virtual time        — uint64_t, instructions (tracer clock)
//   * message sizes       — uint64_t, bytes
//   * bandwidth           — double, bytes per second
//
// The paper quotes bandwidth in MB/s (10^6 bytes/s, Myrinet 250 MB/s) and
// latency in microseconds; helpers below convert to/from the internal units.
#pragma once

#include <cstdint>

namespace osim {

inline constexpr double kMega = 1.0e6;
inline constexpr double kMicro = 1.0e-6;

/// Converts MB/s (10^6 bytes per second, as in the paper) to bytes/second.
constexpr double mbps_to_bytes_per_s(double mbps) { return mbps * kMega; }

/// Converts bytes/second to MB/s.
constexpr double bytes_per_s_to_mbps(double bps) { return bps / kMega; }

/// Converts microseconds to seconds.
constexpr double us_to_s(double us) { return us * kMicro; }

/// Converts seconds to microseconds.
constexpr double s_to_us(double s) { return s / kMicro; }

/// Converts an instruction count to seconds given a MIPS rate
/// (millions of instructions per second), as the paper's tracer does:
/// "the tracer obtains time-stamps by scaling the number of executed
/// instructions by the average MIPS rate observed in a real run".
constexpr double instructions_to_s(std::uint64_t instructions, double mips) {
  return static_cast<double>(instructions) / (mips * kMega);
}

/// Inverse of instructions_to_s (rounds down).
constexpr std::uint64_t s_to_instructions(double seconds, double mips) {
  const double instr = seconds * mips * kMega;
  return instr <= 0.0 ? 0u : static_cast<std::uint64_t>(instr);
}

}  // namespace osim
