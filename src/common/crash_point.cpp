#include "common/crash_point.hpp"

#include <csignal>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <string>

namespace osim {
namespace {

// Per-point hit counters so OSIM_CRASH_POINT="name:3" can target the
// third publication of a run. Guarded: store publication can happen from
// several study workers at once.
std::mutex g_mutex;
std::map<std::string, long>& hit_counts() {
  static std::map<std::string, long> counts;
  return counts;
}

}  // namespace

void maybe_crash(const char* point) {
  const char* spec = std::getenv("OSIM_CRASH_POINT");
  if (spec == nullptr || *spec == '\0') return;

  const char* colon = std::strrchr(spec, ':');
  long target_hit = 1;
  std::size_t name_len = std::strlen(spec);
  if (colon != nullptr) {
    char* end = nullptr;
    const long parsed = std::strtol(colon + 1, &end, 10);
    if (end != colon + 1 && *end == '\0' && parsed >= 1) {
      target_hit = parsed;
      name_len = static_cast<std::size_t>(colon - spec);
    }
  }
  if (std::strlen(point) != name_len ||
      std::strncmp(spec, point, name_len) != 0) {
    return;
  }

  {
    std::lock_guard<std::mutex> lock(g_mutex);
    if (++hit_counts()[point] != target_hit) return;
  }
  // SIGKILL, not abort(): no handlers, no unwinding, no atexit — the
  // closest portable stand-in for kill -9 mid-write.
  std::raise(SIGKILL);
}

}  // namespace osim
