// Graceful-shutdown signal handling for supervised studies. The first
// SIGINT/SIGTERM raises a process-wide atomic flag that supervised code
// (pipeline::Study via StudyOptions::stop_flag, osim_replay's cancel
// token) polls cooperatively: in-flight scenarios drain, a partial study
// report is flushed, and the process exits with kExitInterrupted. A
// second signal restores the default disposition and re-raises, so a
// repeated Ctrl-C still kills a wedged process the ordinary way.
//
// Installation is explicit and opt-in (BenchSetup only installs the
// handler when a supervision flag was given), so unsupervised runs keep
// the stock signal behaviour and perf_identity_test sees zero change.
#pragma once

#include <atomic>

namespace osim {

/// Installs SIGINT/SIGTERM handlers that set shutdown_flag(). Idempotent;
/// safe to call more than once. No-op on platforms without sigaction.
void install_graceful_shutdown();

/// The process-wide stop flag the handlers set. Stable address for the
/// whole process lifetime — hand it to StudyOptions::stop_flag or wrap it
/// in a CancelToken.
const std::atomic<bool>* shutdown_flag();

/// True once a shutdown signal has been received.
bool shutdown_requested();

}  // namespace osim
