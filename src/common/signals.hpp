// Graceful-shutdown signal handling for supervised studies and daemons.
//
// Studies: the first SIGINT/SIGTERM raises a process-wide atomic flag that
// supervised code (pipeline::Study via StudyOptions::stop_flag,
// osim_replay's cancel token) polls cooperatively: in-flight scenarios
// drain, a partial study report is flushed, and the process exits with
// kExitInterrupted. A second signal restores the default disposition and
// re-raises, so a repeated Ctrl-C still kills a wedged process the
// ordinary way.
//
// Daemons (osim_serve): a poll()-driven controller cannot rely on flag
// polling alone — a signal that lands between the flag check and the
// poll() call would sleep until the next unrelated wakeup. signal_wake_fd()
// is the classic self-pipe answer: handlers write one byte to a
// non-blocking pipe whose read end sits in the controller's poll set, so
// every SIGINT/SIGTERM/SIGCHLD turns into a level-triggered readable fd.
// install_child_reaper() adds the SIGCHLD half (dead workers), and
// reap_children() collects every exited child without blocking.
//
// Installation is explicit and opt-in (BenchSetup only installs the
// handler when a supervision flag was given), so unsupervised runs keep
// the stock signal behaviour and perf_identity_test sees zero change.
#pragma once

#include <atomic>
#include <vector>

namespace osim {

/// Installs SIGINT/SIGTERM handlers that set shutdown_flag(). Idempotent;
/// safe to call more than once. No-op on platforms without sigaction.
void install_graceful_shutdown();

/// The process-wide stop flag the handlers set. Stable address for the
/// whole process lifetime — hand it to StudyOptions::stop_flag or wrap it
/// in a CancelToken.
const std::atomic<bool>* shutdown_flag();

/// True once a shutdown signal has been received.
bool shutdown_requested();

/// Ignores SIGPIPE process-wide. A daemon whose client disconnects
/// mid-reply must see EPIPE from write() (an error it can handle per
/// connection), not a process-killing signal. Idempotent.
void ignore_sigpipe();

/// The read end of the signal self-pipe (created on first call; -1 when
/// pipes are unavailable). After install_graceful_shutdown() /
/// install_child_reaper(), the fd becomes readable whenever a handled
/// signal fires; put it in a poll set and call drain_signal_wake_fd()
/// on wakeup. The fd is non-blocking and close-on-exec and belongs to
/// this module — never close it.
int signal_wake_fd();

/// Reads off any pending wake bytes (non-blocking; safe to call anytime).
void drain_signal_wake_fd();

/// Installs a SIGCHLD handler that raises child_exit_pending() and wakes
/// signal_wake_fd(). Idempotent. Reaping itself happens synchronously in
/// reap_children() — the handler only notifies, keeping it trivially
/// async-signal-safe.
void install_child_reaper();

/// True once SIGCHLD has fired since the last reap_children() call.
bool child_exit_pending();

/// One child collected by reap_children(). `status` is the raw waitpid
/// status — use WIFEXITED/WIFSIGNALED and friends to interpret it.
struct ReapedChild {
  int pid = -1;
  int status = 0;
};

/// Collects every exited child right now (waitpid WNOHANG loop) and
/// clears child_exit_pending(). Never blocks; returns an empty vector
/// when no child has exited. Safe to call without install_child_reaper()
/// — the reaper only adds the wakeup, not the ability to reap.
std::vector<ReapedChild> reap_children();

}  // namespace osim
