#include "common/run_options.hpp"

#include <cstdio>
#include <thread>

#include "common/expect.hpp"
#include "common/strings.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define OSIM_HAVE_RUSAGE 1
#include <sys/resource.h>
#else
#define OSIM_HAVE_RUSAGE 0
#endif

namespace osim {

void RunOptions::register_flags(Flags& flags, const char* report_flag,
                                const std::string& report_help) {
  flags.add("jobs", &jobs,
            "parallel replay jobs (0 = one per hardware thread)");
  flags.add("cache-dir", &cache_dir,
            "persistent scenario store directory (default: $OSIM_CACHE_DIR; "
            "warm reruns are served from the disk store — see osim_cache)");
  flags.add("perf-json", &perf_json,
            "write a JSON performance record of this invocation (wall "
            "clock, CPU time, peak RSS, tool counters) to this path");
  if (report_flag != nullptr) {
    flags.add(report_flag, &report, report_help);
  }
}

int RunOptions::resolved_jobs() const {
  if (jobs < 0) throw UsageError("--jobs must be non-negative");
  if (jobs == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }
  return static_cast<int>(jobs);
}

PerfRecorder::PerfRecorder(std::string tool)
    : tool_(std::move(tool)), start_(std::chrono::steady_clock::now()) {}

void PerfRecorder::add(const std::string& key, double value) {
  counters_.emplace_back(key, value);
}

void PerfRecorder::write_if(const std::string& path) const {
  if (path.empty()) return;
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  double user_s = 0.0;
  double sys_s = 0.0;
  double max_rss_kb = 0.0;
#if OSIM_HAVE_RUSAGE
  struct rusage usage = {};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
    user_s = static_cast<double>(usage.ru_utime.tv_sec) +
             static_cast<double>(usage.ru_utime.tv_usec) * 1e-6;
    sys_s = static_cast<double>(usage.ru_stime.tv_sec) +
            static_cast<double>(usage.ru_stime.tv_usec) * 1e-6;
    max_rss_kb = static_cast<double>(usage.ru_maxrss);
  }
#endif
  // The record is flat and numeric apart from the tool name, so it is
  // written by hand (common/ sits below the JSON writer in metrics/).
  std::string out = "{\n";
  out += "  \"schema\": \"osim-perf-record-v1\",\n";
  out += strprintf("  \"tool\": \"%s\",\n", tool_.c_str());
  out += strprintf("  \"wall_s\": %.6f,\n", wall_s);
  out += strprintf("  \"user_s\": %.6f,\n", user_s);
  out += strprintf("  \"sys_s\": %.6f,\n", sys_s);
  out += strprintf("  \"max_rss_kb\": %.0f", max_rss_kb);
  for (const auto& [key, value] : counters_) {
    out += strprintf(",\n  \"%s\": %.9g", key.c_str(), value);
  }
  out += "\n}\n";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) throw Error("cannot write perf record: " + path);
  std::fputs(out.c_str(), f);
  std::fclose(f);
  std::fprintf(stderr, "[perf] record written to %s\n", path.c_str());
}

}  // namespace osim
