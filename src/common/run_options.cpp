#include "common/run_options.hpp"

#include <cstdio>
#include <thread>

#include "common/expect.hpp"
#include "common/strings.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define OSIM_HAVE_RUSAGE 1
#include <sys/resource.h>
#else
#define OSIM_HAVE_RUSAGE 0
#endif

namespace osim {

void RunOptions::register_flags(Flags& flags, const char* report_flag,
                                const std::string& report_help) {
  flags.add("jobs", &jobs,
            "parallel replay jobs (0 = one per hardware thread)");
  flags.add("cache-dir", &cache_dir,
            "persistent scenario store directory (default: $OSIM_CACHE_DIR; "
            "warm reruns are served from the disk store — see osim_cache)");
  flags.add("perf-json", &perf_json,
            "write a JSON performance record of this invocation (wall "
            "clock, CPU time, peak RSS, tool counters) to this path");
  if (report_flag != nullptr) {
    flags.add(report_flag, &report, report_help);
  }
}

void RunOptions::register_supervision_flags(Flags& flags) {
  flags.add("scenario-timeout", &scenario_timeout_s,
            "wall-clock budget per scenario in seconds (0 = unbounded); a "
            "scenario over budget is recorded with status \"timeout\" and "
            "the sweep continues");
  flags.add("study-deadline", &study_deadline_s,
            "wall-clock budget for the whole run in seconds (0 = "
            "unbounded); at the deadline in-flight scenarios stop, a "
            "partial report is flushed and the run exits 5");
  flags.add("memory-budget", &memory_budget,
            "in-memory replay-cache budget (e.g. 64M, 1G, or bytes; "
            "empty = unbounded); under pressure results evict to the "
            "disk store instead of growing the heap");
  flags.add("journal", &journal,
            "record per-scenario terminal status in a study journal "
            "inside the scenario store (requires --cache-dir)");
  flags.add("resume", &resume,
            "skip scenarios an earlier (killed or interrupted) run "
            "already journaled as done; implies --journal");
  flags.add("canonical-report", &canonical_report,
            "write the report with deterministic fields only (no wall "
            "times or cache tiers), so resumed and uninterrupted runs "
            "can be diffed byte for byte");
}

bool RunOptions::supervision_requested() const {
  return scenario_timeout_s > 0.0 || study_deadline_s > 0.0 ||
         !memory_budget.empty() || journal || resume || canonical_report;
}

int RunOptions::resolved_jobs() const {
  if (jobs < 0) throw UsageError("--jobs must be non-negative");
  if (jobs == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }
  return static_cast<int>(jobs);
}

std::int64_t RunOptions::memory_budget_bytes() const {
  if (memory_budget.empty()) return 0;
  std::size_t pos = 0;
  unsigned long long value = 0;
  try {
    value = std::stoull(memory_budget, &pos);
  } catch (const std::exception&) {
    throw UsageError("--memory-budget: cannot parse '" + memory_budget +
                     "' (expected e.g. 64M, 1G, or a byte count)");
  }
  std::int64_t multiplier = 1;
  if (pos < memory_budget.size()) {
    if (pos + 1 != memory_budget.size()) {
      throw UsageError("--memory-budget: trailing garbage in '" +
                       memory_budget + "'");
    }
    switch (memory_budget[pos]) {
      case 'k': case 'K': multiplier = 1024; break;
      case 'm': case 'M': multiplier = 1024 * 1024; break;
      case 'g': case 'G': multiplier = 1024 * 1024 * 1024; break;
      default:
        throw UsageError("--memory-budget: unknown suffix in '" +
                         memory_budget + "' (use K, M, or G)");
    }
  }
  const auto bytes = static_cast<std::int64_t>(value) * multiplier;
  if (bytes <= 0) {
    throw UsageError("--memory-budget must be positive: " + memory_budget);
  }
  return bytes;
}

PerfRecorder::PerfRecorder(std::string tool)
    : tool_(std::move(tool)), start_(std::chrono::steady_clock::now()) {}

void PerfRecorder::add(const std::string& key, double value) {
  counters_.emplace_back(key, value);
}

void PerfRecorder::write_if(const std::string& path) const {
  if (path.empty()) return;
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  double user_s = 0.0;
  double sys_s = 0.0;
  double max_rss_kb = 0.0;
#if OSIM_HAVE_RUSAGE
  struct rusage usage = {};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
    user_s = static_cast<double>(usage.ru_utime.tv_sec) +
             static_cast<double>(usage.ru_utime.tv_usec) * 1e-6;
    sys_s = static_cast<double>(usage.ru_stime.tv_sec) +
            static_cast<double>(usage.ru_stime.tv_usec) * 1e-6;
    max_rss_kb = static_cast<double>(usage.ru_maxrss);
  }
#endif
  // The record is flat and numeric apart from the tool name, so it is
  // written by hand (common/ sits below the JSON writer in metrics/).
  std::string out = "{\n";
  out += "  \"schema\": \"osim-perf-record-v1\",\n";
  out += strprintf("  \"tool\": \"%s\",\n", tool_.c_str());
  out += strprintf("  \"wall_s\": %.6f,\n", wall_s);
  out += strprintf("  \"user_s\": %.6f,\n", user_s);
  out += strprintf("  \"sys_s\": %.6f,\n", sys_s);
  out += strprintf("  \"max_rss_kb\": %.0f", max_rss_kb);
  for (const auto& [key, value] : counters_) {
    out += strprintf(",\n  \"%s\": %.9g", key.c_str(), value);
  }
  out += "\n}\n";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) throw Error("cannot write perf record: " + path);
  std::fputs(out.c_str(), f);
  std::fclose(f);
  std::fprintf(stderr, "[perf] record written to %s\n", path.c_str());
}

}  // namespace osim
