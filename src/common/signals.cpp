#include "common/signals.hpp"

#include <csignal>

namespace osim {
namespace {

std::atomic<bool> g_shutdown{false};

#if defined(__unix__) || defined(__APPLE__)

extern "C" void osim_shutdown_handler(int signum) {
  // Second signal: restore the default disposition and re-raise, so a
  // stuck drain can still be killed interactively. Everything here is
  // async-signal-safe (atomics, sigaction, raise).
  if (g_shutdown.exchange(true, std::memory_order_relaxed)) {
    std::signal(signum, SIG_DFL);
    std::raise(signum);
  }
}

#endif

}  // namespace

void install_graceful_shutdown() {
#if defined(__unix__) || defined(__APPLE__)
  struct sigaction action = {};
  action.sa_handler = &osim_shutdown_handler;
  sigemptyset(&action.sa_mask);
  // No SA_RESTART: a study blocked in a slow read should see EINTR and
  // reach its next cancellation poll instead of sleeping through it.
  action.sa_flags = 0;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
#endif
}

const std::atomic<bool>* shutdown_flag() { return &g_shutdown; }

bool shutdown_requested() {
  return g_shutdown.load(std::memory_order_relaxed);
}

}  // namespace osim
