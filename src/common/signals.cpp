#include "common/signals.hpp"

#include <csignal>

#if defined(__unix__) || defined(__APPLE__)
#define OSIM_HAVE_SIGNALS 1
#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>
#else
#define OSIM_HAVE_SIGNALS 0
#endif

namespace osim {
namespace {

std::atomic<bool> g_shutdown{false};
std::atomic<bool> g_child_exited{false};

#if OSIM_HAVE_SIGNALS

// Self-pipe shared by every handler in this module. -1 until
// signal_wake_fd() creates it; the write is skipped while unset, so
// handlers stay correct whether or not anyone polls.
std::atomic<int> g_wake_write_fd{-1};
int g_wake_read_fd = -1;

void wake_pollers() {
  // Async-signal-safe: one write to a non-blocking pipe. A full pipe
  // (EAGAIN) is fine — the poller is already due a wakeup.
  const int fd = g_wake_write_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 'w';
    [[maybe_unused]] const ssize_t rc = write(fd, &byte, 1);
  }
}

extern "C" void osim_shutdown_handler(int signum) {
  // Second signal: restore the default disposition and re-raise, so a
  // stuck drain can still be killed interactively. Everything here is
  // async-signal-safe (atomics, sigaction, raise, write).
  if (g_shutdown.exchange(true, std::memory_order_relaxed)) {
    std::signal(signum, SIG_DFL);
    std::raise(signum);
  }
  wake_pollers();
}

extern "C" void osim_sigchld_handler(int) {
  g_child_exited.store(true, std::memory_order_relaxed);
  wake_pollers();
}

void make_wake_pipe() {
  int fds[2] = {-1, -1};
  if (pipe(fds) != 0) return;
  for (const int fd : fds) {
    fcntl(fd, F_SETFL, fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
    fcntl(fd, F_SETFD, fcntl(fd, F_GETFD, 0) | FD_CLOEXEC);
  }
  g_wake_read_fd = fds[0];
  g_wake_write_fd.store(fds[1], std::memory_order_relaxed);
}

#endif

}  // namespace

void install_graceful_shutdown() {
#if OSIM_HAVE_SIGNALS
  struct sigaction action = {};
  action.sa_handler = &osim_shutdown_handler;
  sigemptyset(&action.sa_mask);
  // No SA_RESTART: a study blocked in a slow read should see EINTR and
  // reach its next cancellation poll instead of sleeping through it.
  action.sa_flags = 0;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
#endif
}

const std::atomic<bool>* shutdown_flag() { return &g_shutdown; }

bool shutdown_requested() {
  return g_shutdown.load(std::memory_order_relaxed);
}

void ignore_sigpipe() {
#if OSIM_HAVE_SIGNALS
  struct sigaction action = {};
  action.sa_handler = SIG_IGN;
  sigemptyset(&action.sa_mask);
  sigaction(SIGPIPE, &action, nullptr);
#endif
}

int signal_wake_fd() {
#if OSIM_HAVE_SIGNALS
  if (g_wake_read_fd < 0) make_wake_pipe();
  return g_wake_read_fd;
#else
  return -1;
#endif
}

void drain_signal_wake_fd() {
#if OSIM_HAVE_SIGNALS
  if (g_wake_read_fd < 0) return;
  char buf[64];
  while (read(g_wake_read_fd, buf, sizeof(buf)) > 0) {
  }
#endif
}

void install_child_reaper() {
#if OSIM_HAVE_SIGNALS
  struct sigaction action = {};
  action.sa_handler = &osim_sigchld_handler;
  sigemptyset(&action.sa_mask);
  // SA_NOCLDSTOP: only exits, not job-control stops, concern a reaper.
  // No SA_RESTART, same reasoning as the shutdown handler.
  action.sa_flags = SA_NOCLDSTOP;
  sigaction(SIGCHLD, &action, nullptr);
#endif
}

bool child_exit_pending() {
  return g_child_exited.load(std::memory_order_relaxed);
}

std::vector<ReapedChild> reap_children() {
  std::vector<ReapedChild> reaped;
#if OSIM_HAVE_SIGNALS
  // Clear the flag before reaping: a SIGCHLD that lands mid-loop re-raises
  // it, and the already-exited child is still collected by this WNOHANG
  // sweep — so an exit is never lost between the flag and the wait.
  g_child_exited.store(false, std::memory_order_relaxed);
  while (true) {
    int status = 0;
    const pid_t pid = waitpid(-1, &status, WNOHANG);
    if (pid <= 0) break;
    reaped.push_back(ReapedChild{static_cast<int>(pid), status});
  }
#endif
  return reaped;
}

}  // namespace osim
