#include "common/csv.hpp"

#include "common/expect.hpp"

namespace osim {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : columns_(header.size()), file_(path), has_file_(true) {
  if (!file_) throw Error("cannot open CSV output file: " + path);
  write_row(header);
}

CsvWriter::CsvWriter(const std::vector<std::string>& header)
    : columns_(header.size()) {
  write_row(header);
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  OSIM_CHECK_MSG(cells.size() == columns_, "CSV row width mismatch");
  write_row(cells);
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) buffer_.push_back(',');
    buffer_.append(escape(cells[i]));
  }
  buffer_.push_back('\n');
}

std::string CsvWriter::escape(const std::string& cell) {
  const bool needs_quote =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void CsvWriter::flush() {
  if (has_file_ && file_ && flushed_ < buffer_.size()) {
    file_.write(buffer_.data() + flushed_,
                static_cast<std::streamsize>(buffer_.size() - flushed_));
    file_.flush();
    flushed_ = buffer_.size();
  }
}

CsvWriter::~CsvWriter() { flush(); }

}  // namespace osim
