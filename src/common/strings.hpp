// Small string utilities shared by trace parsing, CLI flag parsing and
// report formatting.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace osim {

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view text, char sep);

/// Splits on any run of whitespace, dropping empty fields.
std::vector<std::string> split_ws(std::string_view text);

/// Removes leading and trailing whitespace.
std::string_view trim(std::string_view text);

/// Returns true if `text` starts with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// Strict integer / floating point parsing; nullopt on any trailing garbage.
std::optional<std::int64_t> parse_i64(std::string_view text);
std::optional<std::uint64_t> parse_u64(std::string_view text);
std::optional<double> parse_f64(std::string_view text);

/// printf-style formatting into a std::string.
std::string strprintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Joins items with `sep`.
std::string join(const std::vector<std::string>& items, std::string_view sep);

/// Formats seconds with an adaptive unit (ns/us/ms/s) for human output.
std::string format_seconds(double seconds);

/// Formats a byte count with an adaptive unit (B/KB/MB/GB), decimal units.
std::string format_bytes(double bytes);

}  // namespace osim
