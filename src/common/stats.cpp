#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/expect.hpp"

namespace osim {

double mean(std::span<const double> xs) {
  OSIM_CHECK(!xs.empty());
  double s = 0.0;
  for (const double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  OSIM_CHECK(!xs.empty());
  const double m = mean(xs);
  double s = 0.0;
  for (const double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double min_of(std::span<const double> xs) {
  OSIM_CHECK(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  OSIM_CHECK(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

double percentile(std::span<const double> xs, double p) {
  OSIM_CHECK(!xs.empty());
  OSIM_CHECK(p >= 0.0 && p <= 100.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

double geomean(std::span<const double> xs) {
  OSIM_CHECK(!xs.empty());
  double log_sum = 0.0;
  for (const double x : xs) {
    OSIM_CHECK_MSG(x > 0.0, "geomean requires positive inputs");
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  sum_sq_ += x * x;
}

double RunningStats::mean() const {
  OSIM_CHECK(n_ > 0);
  return sum_ / static_cast<double>(n_);
}

double RunningStats::variance() const {
  OSIM_CHECK(n_ > 0);
  const double m = mean();
  const double v = sum_sq_ / static_cast<double>(n_) - m * m;
  return v < 0.0 ? 0.0 : v;  // guard against rounding
}

double RunningStats::min() const {
  OSIM_CHECK(n_ > 0);
  return min_;
}

double RunningStats::max() const {
  OSIM_CHECK(n_ > 0);
  return max_;
}

}  // namespace osim
