// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) for trace-file
// integrity footers. Header-only; the table is built at compile time so
// there is no init-order dependency.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace osim {

namespace detail {

constexpr std::array<std::uint32_t, 256> crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32Table = crc32_table();

}  // namespace detail

/// Incremental CRC-32. Feed bytes with update(), read the digest with
/// value(); a fresh instance (or reset()) starts a new message.
class Crc32 {
 public:
  void update(std::uint8_t byte) {
    crc_ = detail::kCrc32Table[(crc_ ^ byte) & 0xFFu] ^ (crc_ >> 8);
  }
  void update(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    for (std::size_t i = 0; i < n; ++i) update(p[i]);
  }
  std::uint32_t value() const { return crc_ ^ 0xFFFFFFFFu; }
  void reset() { crc_ = 0xFFFFFFFFu; }

 private:
  std::uint32_t crc_ = 0xFFFFFFFFu;
};

}  // namespace osim
