// Cooperative cancellation for long replays: a CancelToken bundles an
// optional external stop flag (SIGINT/SIGTERM, a supervisor's kill switch)
// with optional wall-clock deadlines — one for the scenario being replayed
// and one for the whole study. The replay event loop polls check() on an
// amortized stride (dimemas/replay.cpp, kCancelPollStride) and unwinds by
// throwing CancelledError, which carries the cause plus the partial
// progress accumulated so far so a supervisor can still attribute wait
// time for a scenario it had to abandon.
//
// Header-only and pointer-based on purpose: ReplayOptions stores a
// `const CancelToken*` that is NOT part of the scenario fingerprint
// (pipeline/context.cpp hashes fields explicitly), so arming a watchdog
// never changes what a scenario *is* — only whether it ran to completion.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

#include "common/expect.hpp"

namespace osim {

/// Why a replay was stopped before completion.
enum class StopCause : std::uint8_t {
  kNone = 0,
  /// The external stop flag was raised (SIGINT/SIGTERM, supervisor).
  kCancel = 1,
  /// The per-scenario wall-clock budget expired (--scenario-timeout).
  kScenarioTimeout = 2,
  /// The whole-study wall-clock budget expired (--study-deadline).
  kStudyDeadline = 3,
};

inline const char* stop_cause_name(StopCause cause) {
  switch (cause) {
    case StopCause::kNone: return "none";
    case StopCause::kCancel: return "cancel";
    case StopCause::kScenarioTimeout: return "scenario-timeout";
    case StopCause::kStudyDeadline: return "study-deadline";
  }
  return "unknown";
}

/// What a replay had simulated when it was stopped. All values are partial
/// sums over the event prefix that did run; they are NOT comparable with a
/// completed replay's results and are never cached.
struct PartialProgress {
  double sim_time_s = 0.0;     ///< simulated clock when stopped
  std::uint64_t des_events = 0;  ///< DES events processed so far
  double compute_s = 0.0;      ///< total per-rank compute simulated
  double blocked_s = 0.0;      ///< total per-rank blocked time (incl. spans
                               ///< still open when the replay stopped)
  std::int64_t ranks_finished = 0;  ///< ranks that reached their trace end
};

/// Cooperative stop signal polled from replay loops. Copyable; the
/// referenced flag must outlive every copy. Deadlines are absolute
/// steady_clock points (time_point::max() = unbounded) so a token can be
/// armed once per scenario while the study deadline stays shared.
class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancelToken() = default;

  /// `flag` may be null (no external stop source).
  explicit CancelToken(const std::atomic<bool>* flag) : flag_(flag) {}

  void set_scenario_deadline(Clock::time_point deadline) {
    scenario_deadline_ = deadline;
  }
  void set_study_deadline(Clock::time_point deadline) {
    study_deadline_ = deadline;
  }

  /// True when any stop source is configured — callers can skip polling
  /// entirely for unarmed tokens (the default-path fast case).
  bool armed() const {
    return flag_ != nullptr ||
           scenario_deadline_ != Clock::time_point::max() ||
           study_deadline_ != Clock::time_point::max();
  }

  /// The first stop source that fired, or kNone. Flag beats deadlines
  /// (an interactive Ctrl-C should read "cancelled", not "timeout");
  /// the study deadline beats the scenario one (the broader budget is
  /// the one the supervisor acts on).
  StopCause check() const {
    if (flag_ != nullptr && flag_->load(std::memory_order_relaxed)) {
      return StopCause::kCancel;
    }
    if (scenario_deadline_ == Clock::time_point::max() &&
        study_deadline_ == Clock::time_point::max()) {
      return StopCause::kNone;
    }
    const Clock::time_point now = Clock::now();
    if (now >= study_deadline_) return StopCause::kStudyDeadline;
    if (now >= scenario_deadline_) return StopCause::kScenarioTimeout;
    return StopCause::kNone;
  }

 private:
  const std::atomic<bool>* flag_ = nullptr;
  Clock::time_point scenario_deadline_ = Clock::time_point::max();
  Clock::time_point study_deadline_ = Clock::time_point::max();
};

/// Thrown by dimemas::replay when its CancelToken fires. Derives from
/// osim::Error so unsupervised callers that catch Error keep working; the
/// supervised Study catches this type specifically to record the scenario
/// as timeout/cancelled with its partial wait attribution.
class CancelledError : public Error {
 public:
  CancelledError(StopCause cause, const PartialProgress& partial)
      : Error(std::string("replay stopped: ") + stop_cause_name(cause)),
        cause_(cause),
        partial_(partial) {}

  StopCause cause() const { return cause_; }
  const PartialProgress& partial() const { return partial_; }

 private:
  StopCause cause_;
  PartialProgress partial_;
};

}  // namespace osim
