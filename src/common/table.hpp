// ASCII table renderer used by the bench harness to print the paper's tables
// (Table I, Table II) and figure data series in a readable fixed-width form.
#pragma once

#include <string>
#include <vector>

namespace osim {

class TextTable {
 public:
  enum class Align { kLeft, kRight };

  /// Creates a table with the given column headers. Columns default to
  /// right-aligned except the first, which is left-aligned (row labels).
  explicit TextTable(std::vector<std::string> headers);

  /// Optional caption printed above the table.
  void set_title(std::string title) { title_ = std::move(title); }

  void set_align(size_t column, Align align);

  /// Appends a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats arbitrary cell values with to_string-like rules.
  size_t num_rows() const { return rows_.size(); }
  size_t num_columns() const { return headers_.size(); }

  /// Renders the full table, trailing newline included.
  std::string render() const;

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` significant digits (for table cells).
std::string cell(double value, int digits = 4);

/// Formats a percentage like the paper's Table II ("66.3%").
std::string cell_percent(double fraction, int decimals = 2);

}  // namespace osim
