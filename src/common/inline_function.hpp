// InlineFunction — a move-only std::function replacement with a
// configurable inline buffer.
//
// The discrete-event core schedules millions of small closures per replay;
// std::function's inline buffer (16 bytes on libstdc++) is too small for
// the common `[this, transfer]` and `[this, fn = std::move(cb)]` captures,
// so every such event costs a heap allocation. InlineFunction stores
// callables up to `InlineBytes` in place (48 bytes covers every closure the
// replay engine and network models build) and only falls back to the heap
// for larger ones. Move-only: the event queue never copies handlers.
#pragma once

#include <cstddef>
#include <type_traits>
#include <utility>

namespace osim {

template <typename Signature, std::size_t InlineBytes = 48>
class InlineFunction;

template <typename R, typename... Args, std::size_t InlineBytes>
class InlineFunction<R(Args...), InlineBytes> {
 public:
  InlineFunction() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction>>>
  InlineFunction(F&& fn) {  // NOLINT(google-explicit-constructor)
    init(std::forward<F>(fn));
  }

  InlineFunction(InlineFunction&& other) noexcept { move_from(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  R operator()(Args... args) {
    return ops_->invoke(buf_, std::forward<Args>(args)...);
  }

 private:
  struct Ops {
    R (*invoke)(void*, Args&&...);
    /// Move-constructs the callable at `dst` from `src`, then destroys the
    /// one at `src` (heap-backed callables just move the owning pointer).
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
  };

  template <typename F>
  void init(F&& fn) {
    using D = std::decay_t<F>;
    if constexpr (sizeof(D) <= InlineBytes &&
                  alignof(D) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(fn));
      static constexpr Ops ops = {
          [](void* p, Args&&... args) -> R {
            return (*static_cast<D*>(p))(std::forward<Args>(args)...);
          },
          [](void* dst, void* src) {
            ::new (dst) D(std::move(*static_cast<D*>(src)));
            static_cast<D*>(src)->~D();
          },
          [](void* p) { static_cast<D*>(p)->~D(); },
      };
      ops_ = &ops;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(fn)));
      static constexpr Ops ops = {
          [](void* p, Args&&... args) -> R {
            return (**static_cast<D**>(p))(std::forward<Args>(args)...);
          },
          [](void* dst, void* src) {
            ::new (dst) D*(*static_cast<D**>(src));
          },
          [](void* p) { delete *static_cast<D**>(p); },
      };
      ops_ = &ops;
    }
  }

  void move_from(InlineFunction& other) noexcept {
    if (other.ops_ != nullptr) {
      ops_ = other.ops_;
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[InlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace osim
