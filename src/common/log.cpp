#include "common/log.hpp"

#include <atomic>
#include <cstdio>

namespace osim::log {

namespace {

std::atomic<Level> g_level{Level::kWarn};
std::mutex g_mutex;
std::string* g_capture = nullptr;

const char* level_name(Level lvl) {
  switch (lvl) {
    case Level::kDebug:
      return "DEBUG";
    case Level::kInfo:
      return "INFO";
    case Level::kWarn:
      return "WARN";
    case Level::kError:
      return "ERROR";
    case Level::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void set_level(Level lvl) { g_level.store(lvl, std::memory_order_relaxed); }

Level level() { return g_level.load(std::memory_order_relaxed); }

void set_capture(std::string* sink) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_capture = sink;
}

namespace detail {

void emit(Level lvl, const std::string& message) {
  std::lock_guard<std::mutex> lock(g_mutex);
  if (g_capture != nullptr) {
    g_capture->append(level_name(lvl));
    g_capture->append(": ");
    g_capture->append(message);
    g_capture->push_back('\n');
    return;
  }
  std::fprintf(stderr, "[osim %s] %s\n", level_name(lvl), message.c_str());
}

}  // namespace detail
}  // namespace osim::log
