// Invariant-checking macros used throughout overlapsim.
//
// OSIM_CHECK(cond)        — always-on invariant; aborts with a diagnostic.
// OSIM_CHECK_MSG(cond, m) — same, with an extra human-readable message.
// OSIM_UNREACHABLE(m)     — marks code paths that must never execute.
// osim::Error             — exception type for user-facing configuration /
//                           input errors (bad trace file, bad CLI flag...).
//
// Internal invariants abort (a broken simulator state is not recoverable);
// user input problems throw osim::Error so callers can report them nicely.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace osim {

/// Exception for user-facing errors (malformed input, bad configuration).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Error in how a tool was invoked (unknown flag, malformed flag value,
/// missing argument). Tools map this to exit code 2 — distinct from runtime
/// failures — so scripts can tell "you called it wrong" from "it failed".
class UsageError : public Error {
 public:
  explicit UsageError(const std::string& what) : Error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* cond, const char* file,
                                      int line, const std::string& msg) {
  std::fprintf(stderr, "OSIM_CHECK failed: %s\n  at %s:%d\n", cond, file,
               line);
  if (!msg.empty()) std::fprintf(stderr, "  %s\n", msg.c_str());
  std::abort();
}

}  // namespace detail
}  // namespace osim

#define OSIM_CHECK(cond)                                             \
  do {                                                               \
    if (!(cond)) {                                                   \
      ::osim::detail::check_failed(#cond, __FILE__, __LINE__, "");   \
    }                                                                \
  } while (false)

#define OSIM_CHECK_MSG(cond, msg)                                     \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::osim::detail::check_failed(#cond, __FILE__, __LINE__, (msg)); \
    }                                                                 \
  } while (false)

#define OSIM_UNREACHABLE(msg) \
  ::osim::detail::check_failed("unreachable", __FILE__, __LINE__, (msg))
