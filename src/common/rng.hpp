// Deterministic, seedable RNG (xoshiro256**) so every experiment is
// reproducible run-to-run regardless of platform. Satisfies
// UniformRandomBitGenerator so it plugs into <random> distributions.
#pragma once

#include <cstdint>
#include <limits>

namespace osim {

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // SplitMix64 expansion of the seed into the 256-bit state, per the
    // xoshiro authors' recommendation.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n) {
    // Lemire's nearly-divisionless method would be overkill; modulo bias is
    // negligible for the ranges used here, but use rejection to stay exact.
    const std::uint64_t threshold = (0 - n) % n;
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % n;
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace osim
