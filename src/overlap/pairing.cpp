#include "overlap/pairing.hpp"

#include <map>
#include <tuple>

#include "common/expect.hpp"
#include "common/strings.hpp"

namespace osim::overlap {

using trace::AnnEvent;
using trace::Rank;
using trace::Tag;

trace::Tag chunk_tag(Tag tag, std::int64_t pair_seq, int chunk_index) {
  OSIM_CHECK_MSG(tag >= 0 && tag < (Tag{1} << 28),
                 "application tag out of range for chunk tagging");
  OSIM_CHECK_MSG(pair_seq >= 0 && pair_seq < (std::int64_t{1} << 24),
                 "too many chunked messages on one (src, dst, tag)");
  OSIM_CHECK(chunk_index >= 0 && chunk_index < 256);
  return (Tag{1} << 62) | (tag << 32) |
         (static_cast<Tag>(pair_seq) << 8) | chunk_index;
}

std::optional<ChunkTagParts> decode_chunk_tag(Tag tag) {
  if (tag < 0 || (tag & (Tag{1} << 62)) == 0) return std::nullopt;
  ChunkTagParts parts;
  parts.tag = (tag >> 32) & ((Tag{1} << 28) - 1);
  parts.pair_seq = (tag >> 8) & ((std::int64_t{1} << 24) - 1);
  parts.chunk_index = static_cast<int>(tag & 0xff);
  return parts;
}

namespace {

struct Side {
  Rank rank;
  std::size_t event_index;
  bool chunkable;
  std::uint64_t num_elements;
  std::uint64_t bytes;
};

bool is_send(const AnnEvent& ev) {
  return ev.kind == AnnEvent::Kind::kSend ||
         ev.kind == AnnEvent::Kind::kIsend;
}

bool is_recv(const AnnEvent& ev) {
  return ev.kind == AnnEvent::Kind::kRecv ||
         ev.kind == AnnEvent::Kind::kIrecv;
}

}  // namespace

Pairing pair_messages(const trace::AnnotatedTrace& trace,
                      const OverlapOptions& options) {
  Pairing pairing;
  pairing.plans.resize(static_cast<std::size_t>(trace.num_ranks));

  // FIFO queues per (src, dst, tag), built in program order per rank —
  // which is exactly MPI matching order for deterministic programs.
  using Key = std::tuple<Rank, Rank, Tag>;
  std::map<Key, std::vector<Side>> sends;
  std::map<Key, std::vector<Side>> recvs;
  bool any_wildcard = false;

  for (Rank rank = 0; rank < trace.num_ranks; ++rank) {
    const auto& events = trace.ranks[static_cast<std::size_t>(rank)].events;
    pairing.plans[static_cast<std::size_t>(rank)].resize(events.size());
    for (std::size_t i = 0; i < events.size(); ++i) {
      const AnnEvent& ev = events[i];
      const std::uint64_t elems =
          ev.elem_bytes > 0 ? ev.bytes / ev.elem_bytes : 0;
      if (is_send(ev)) {
        sends[{rank, ev.peer, ev.tag}].push_back(
            Side{rank, i, ev.chunkable, elems, ev.bytes});
      } else if (is_recv(ev)) {
        if (ev.peer == trace::kAnyRank || ev.tag == trace::kAnyTag) {
          any_wildcard = true;  // wildcard recvs stay unchunked
          continue;
        }
        recvs[{ev.peer, rank, ev.tag}].push_back(
            Side{rank, i, ev.chunkable, elems, ev.bytes});
      }
    }
  }

  for (auto& [key, send_list] : sends) {
    auto it = recvs.find(key);
    const std::size_t nrecv = it == recvs.end() ? 0 : it->second.size();
    if (nrecv != send_list.size()) {
      if (any_wildcard) continue;  // matched dynamically; leave unchunked
      throw Error(strprintf(
          "overlap pairing: %zu sends vs %zu recvs for src=%d dst=%d "
          "tag=%lld",
          send_list.size(), nrecv, std::get<0>(key), std::get<1>(key),
          static_cast<long long>(std::get<2>(key))));
    }
    std::int64_t pair_seq = 0;
    for (std::size_t k = 0; k < send_list.size(); ++k) {
      const Side& send = send_list[k];
      const Side& recv = it->second[k];
      if (send.bytes != recv.bytes) {
        throw Error(strprintf(
            "overlap pairing: size mismatch (%llu vs %llu bytes) on message "
            "%zu of src=%d dst=%d tag=%lld",
            static_cast<unsigned long long>(send.bytes),
            static_cast<unsigned long long>(recv.bytes), k,
            std::get<0>(key), std::get<1>(key),
            static_cast<long long>(std::get<2>(key))));
      }
      if (!send.chunkable || !recv.chunkable ||
          send.num_elements != recv.num_elements) {
        continue;
      }
      const int chunks =
          options.effective_chunks(send.num_elements, send.bytes);
      if (chunks <= 0) continue;
      EventPlan plan{chunks, pair_seq++};
      pairing.plans[static_cast<std::size_t>(send.rank)][send.event_index] =
          plan;
      pairing.plans[static_cast<std::size_t>(recv.rank)][recv.event_index] =
          plan;
    }
  }
  return pairing;
}

}  // namespace osim::overlap
