// Chunk geometry and per-chunk event times — the pure arithmetic core of
// the overlap transformation, kept free of trace plumbing so it can be
// tested directly.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace osim::overlap {

/// Balanced split of `num_elements` into `chunks` contiguous ranges.
/// chunk j covers elements [bounds[j], bounds[j+1]); bounds has chunks+1
/// entries, bounds[0] == 0, bounds[chunks] == num_elements.
std::vector<std::uint64_t> chunk_bounds(std::uint64_t num_elements,
                                        int chunks);

/// Per-chunk *send* times for the measured pattern: chunk j can leave when
/// its last element receives its final value, i.e. max over the chunk of
/// elem_last_store. Elements never stored (kNeverAccessed) are final from
/// the interval start. Results are clamped to [interval_start, send_vclock]
/// and never decrease below the interval start.
std::vector<std::uint64_t> measured_send_times(
    std::span<const std::uint64_t> elem_last_store,
    std::span<const std::uint64_t> bounds, std::uint64_t interval_start,
    std::uint64_t send_vclock);

/// Per-chunk send times for the ideal pattern: chunk j finishes production
/// at fraction (j+1)/n of [interval_start, send_vclock].
std::vector<std::uint64_t> ideal_send_times(int chunks,
                                            std::uint64_t interval_start,
                                            std::uint64_t send_vclock);

/// Per-chunk *wait* times for the measured pattern: chunk j is first needed
/// at the min over the chunk of elem_first_load. Elements never loaded
/// (kNeverAccessed) allow postponing to the interval end. Clamped to
/// [recv_vclock, interval_end].
std::vector<std::uint64_t> measured_wait_times(
    std::span<const std::uint64_t> elem_first_load,
    std::span<const std::uint64_t> bounds, std::uint64_t recv_vclock,
    std::uint64_t interval_end);

/// Per-chunk wait times for the ideal pattern: chunk j is first needed at
/// fraction j/n of [recv_vclock, interval_end] (nothing is needed before
/// chunk 0 — the ideal consumption row of Table II).
std::vector<std::uint64_t> ideal_wait_times(int chunks,
                                            std::uint64_t recv_vclock,
                                            std::uint64_t interval_end);

}  // namespace osim::overlap
