#include "overlap/chunks.hpp"

#include <algorithm>

#include "common/expect.hpp"
#include "trace/annotated.hpp"

namespace osim::overlap {

using trace::kNeverAccessed;

std::vector<std::uint64_t> chunk_bounds(std::uint64_t num_elements,
                                        int chunks) {
  OSIM_CHECK(chunks > 0);
  OSIM_CHECK(static_cast<std::uint64_t>(chunks) <= num_elements);
  std::vector<std::uint64_t> bounds(static_cast<std::size_t>(chunks) + 1);
  for (int j = 0; j <= chunks; ++j) {
    bounds[static_cast<std::size_t>(j)] =
        num_elements * static_cast<std::uint64_t>(j) /
        static_cast<std::uint64_t>(chunks);
  }
  return bounds;
}

std::vector<std::uint64_t> measured_send_times(
    std::span<const std::uint64_t> elem_last_store,
    std::span<const std::uint64_t> bounds, std::uint64_t interval_start,
    std::uint64_t send_vclock) {
  OSIM_CHECK(bounds.size() >= 2);
  OSIM_CHECK(bounds.back() == elem_last_store.size());
  std::vector<std::uint64_t> times(bounds.size() - 1);
  for (std::size_t j = 0; j + 1 < bounds.size(); ++j) {
    std::uint64_t ready = interval_start;
    for (std::uint64_t e = bounds[j]; e < bounds[j + 1]; ++e) {
      const std::uint64_t t = elem_last_store[e];
      if (t == kNeverAccessed) continue;  // final since the interval start
      ready = std::max(ready, t);
    }
    times[j] = std::min(std::max(ready, interval_start), send_vclock);
  }
  return times;
}

std::vector<std::uint64_t> ideal_send_times(int chunks,
                                            std::uint64_t interval_start,
                                            std::uint64_t send_vclock) {
  OSIM_CHECK(chunks > 0);
  OSIM_CHECK(send_vclock >= interval_start);
  const std::uint64_t span = send_vclock - interval_start;
  std::vector<std::uint64_t> times(static_cast<std::size_t>(chunks));
  for (int j = 0; j < chunks; ++j) {
    times[static_cast<std::size_t>(j)] =
        interval_start + span * static_cast<std::uint64_t>(j + 1) /
                             static_cast<std::uint64_t>(chunks);
  }
  return times;
}

std::vector<std::uint64_t> measured_wait_times(
    std::span<const std::uint64_t> elem_first_load,
    std::span<const std::uint64_t> bounds, std::uint64_t recv_vclock,
    std::uint64_t interval_end) {
  OSIM_CHECK(bounds.size() >= 2);
  OSIM_CHECK(bounds.back() == elem_first_load.size());
  OSIM_CHECK(interval_end >= recv_vclock);
  std::vector<std::uint64_t> times(bounds.size() - 1);
  for (std::size_t j = 0; j + 1 < bounds.size(); ++j) {
    std::uint64_t needed = kNeverAccessed;
    for (std::uint64_t e = bounds[j]; e < bounds[j + 1]; ++e) {
      needed = std::min(needed, elem_first_load[e]);
    }
    if (needed == kNeverAccessed) {
      needed = interval_end;  // never read: postpone to the interval end
    }
    times[j] = std::min(std::max(needed, recv_vclock), interval_end);
  }
  return times;
}

std::vector<std::uint64_t> ideal_wait_times(int chunks,
                                            std::uint64_t recv_vclock,
                                            std::uint64_t interval_end) {
  OSIM_CHECK(chunks > 0);
  OSIM_CHECK(interval_end >= recv_vclock);
  const std::uint64_t span = interval_end - recv_vclock;
  std::vector<std::uint64_t> times(static_cast<std::size_t>(chunks));
  for (int j = 0; j < chunks; ++j) {
    times[static_cast<std::size_t>(j)] =
        recv_vclock + span * static_cast<std::uint64_t>(j) /
                          static_cast<std::uint64_t>(chunks);
  }
  return times;
}

}  // namespace osim::overlap
