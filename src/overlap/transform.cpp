#include "overlap/transform.hpp"

#include <algorithm>
#include <map>
#include <unordered_set>

#include "common/expect.hpp"
#include "overlap/chunks.hpp"
#include "overlap/pairing.hpp"

namespace osim::overlap {

using trace::AnnEvent;
using trace::CpuBurst;
using trace::GlobalOp;
using trace::Rank;
using trace::Record;
using trace::Recv;
using trace::ReqId;
using trace::Send;
using trace::Tag;
using trace::Wait;

namespace {

struct TimedOp {
  std::uint64_t vclock = 0;
  /// Tie-break class at equal virtual time: postings (sends, recvs,
  /// collectives) run before waits, and trailing cleanup waits run last.
  /// Without this, the final chunk of a pack loop can tie with the
  /// receive-side waits at the end of the trace and linearize after them,
  /// creating a symmetric circular wait across ranks.
  int prio = 0;
  Record rec;
};

constexpr int kPrioPost = 0;
constexpr int kPrioWait = 1;
constexpr int kPrioCleanup = 2;

/// Orders ops by virtual time and reconstructs computation bursts from the
/// gaps. Emission order is preserved among ops at the same instant
/// (stable sort), which encodes all intra-rank dependencies: requests are
/// always emitted before the waits that complete them.
std::vector<Record> linearize(std::vector<TimedOp> ops,
                              std::uint64_t final_vclock) {
  std::stable_sort(ops.begin(), ops.end(),
                   [](const TimedOp& a, const TimedOp& b) {
                     if (a.vclock != b.vclock) return a.vclock < b.vclock;
                     return a.prio < b.prio;
                   });
  std::vector<Record> records;
  records.reserve(ops.size() * 2 + 1);
  std::uint64_t prev = 0;
  for (TimedOp& op : ops) {
    OSIM_CHECK(op.vclock >= prev);
    if (op.vclock > prev) records.push_back(CpuBurst{op.vclock - prev});
    records.push_back(std::move(op.rec));
    prev = op.vclock;
  }
  OSIM_CHECK(final_vclock >= prev);
  if (final_vclock > prev) records.push_back(CpuBurst{final_vclock - prev});
  return records;
}

Record to_record(const AnnEvent& ev) {
  switch (ev.kind) {
    case AnnEvent::Kind::kSend:
      return Send{ev.peer, ev.tag, ev.bytes, false, trace::kNoRequest};
    case AnnEvent::Kind::kIsend:
      return Send{ev.peer, ev.tag, ev.bytes, true, ev.request};
    case AnnEvent::Kind::kRecv:
      return Recv{ev.peer, ev.tag, ev.bytes, false, trace::kNoRequest};
    case AnnEvent::Kind::kIrecv:
      return Recv{ev.peer, ev.tag, ev.bytes, true, ev.request};
    case AnnEvent::Kind::kWait:
      return Wait{ev.wait_requests};
    case AnnEvent::Kind::kGlobalOp:
      return GlobalOp{ev.coll, ev.root, ev.bytes, ev.coll_sequence};
  }
  OSIM_UNREACHABLE("bad AnnEvent kind");
}

ReqId max_app_request(const trace::AnnotatedRank& rank) {
  ReqId max_id = -1;
  for (const AnnEvent& ev : rank.events) {
    if (ev.kind == AnnEvent::Kind::kIsend ||
        ev.kind == AnnEvent::Kind::kIrecv) {
      max_id = std::max(max_id, ev.request);
    }
  }
  return max_id;
}

}  // namespace

trace::Trace lower_original(const trace::AnnotatedTrace& annotated) {
  trace::Trace out =
      trace::Trace::make(annotated.num_ranks, annotated.mips, annotated.app);
  for (Rank rank = 0; rank < annotated.num_ranks; ++rank) {
    const auto& arank = annotated.ranks[static_cast<std::size_t>(rank)];
    std::vector<TimedOp> ops;
    ops.reserve(arank.events.size());
    for (const AnnEvent& ev : arank.events) {
      ops.push_back(TimedOp{ev.vclock, kPrioPost, to_record(ev)});
    }
    out.ranks[static_cast<std::size_t>(rank)] =
        linearize(std::move(ops), arank.final_vclock);
  }
  return out;
}

trace::Trace transform(const trace::AnnotatedTrace& annotated,
                       const OverlapOptions& options) {
  const Pairing pairing = pair_messages(annotated, options);

  trace::Trace out =
      trace::Trace::make(annotated.num_ranks, annotated.mips, annotated.app);

  for (Rank rank = 0; rank < annotated.num_ranks; ++rank) {
    const auto& arank = annotated.ranks[static_cast<std::size_t>(rank)];
    const auto& plans = pairing.plans[static_cast<std::size_t>(rank)];
    std::vector<TimedOp> ops;
    ops.reserve(arank.events.size() * 2);

    ReqId next_request = max_app_request(arank) + 1;
    // Chunk-send requests still in flight, per send buffer (sender-side
    // rotation between two buffers: the previous message must be fully out
    // before the next message's first chunk leaves).
    std::map<std::int64_t, std::vector<ReqId>> outstanding_sends;
    // App-level requests whose operations were replaced by chunked ones;
    // dropped from app wait lists.
    std::unordered_set<ReqId> replaced;

    for (std::size_t i = 0; i < arank.events.size(); ++i) {
      const AnnEvent& ev = arank.events[i];
      const EventPlan& plan = plans[i];

      switch (ev.kind) {
        case AnnEvent::Kind::kSend:
        case AnnEvent::Kind::kIsend: {
          if (plan.chunks <= 0) {
            ops.push_back(TimedOp{ev.vclock, kPrioPost, to_record(ev)});
            break;
          }
          const std::uint64_t elems = ev.bytes / ev.elem_bytes;
          const auto bounds = chunk_bounds(elems, plan.chunks);
          std::vector<std::uint64_t> times;
          if (!options.advance_sends) {
            times.assign(static_cast<std::size_t>(plan.chunks), ev.vclock);
          } else if (options.pattern == PatternMode::kIdeal) {
            times = ideal_send_times(plan.chunks, ev.interval_start,
                                     ev.vclock);
          } else {
            times = measured_send_times(ev.elem_last_store, bounds,
                                        ev.interval_start, ev.vclock);
          }
          const std::uint64_t first_time =
              *std::min_element(times.begin(), times.end());
          auto& outstanding = outstanding_sends[ev.buffer_id];
          if (!outstanding.empty()) {
            ops.push_back(TimedOp{first_time, kPrioPost,
                                  Wait{std::move(outstanding)}});
            outstanding.clear();
          }
          for (int j = 0; j < plan.chunks; ++j) {
            const std::uint64_t chunk_bytes =
                (bounds[static_cast<std::size_t>(j) + 1] -
                 bounds[static_cast<std::size_t>(j)]) *
                ev.elem_bytes;
            const ReqId req = next_request++;
            ops.push_back(TimedOp{
                times[static_cast<std::size_t>(j)], kPrioPost,
                Send{ev.peer, chunk_tag(ev.tag, plan.pair_seq, j),
                     chunk_bytes, true, req,
                     /*synchronous=*/!options.double_buffering}});
            outstanding.push_back(req);
          }
          if (ev.kind == AnnEvent::Kind::kIsend) replaced.insert(ev.request);
          break;
        }

        case AnnEvent::Kind::kRecv:
        case AnnEvent::Kind::kIrecv: {
          if (plan.chunks <= 0) {
            ops.push_back(TimedOp{ev.vclock, kPrioPost, to_record(ev)});
            break;
          }
          const std::uint64_t elems = ev.bytes / ev.elem_bytes;
          const auto bounds = chunk_bounds(elems, plan.chunks);
          // Consumption cannot begin before the app-level blocking point:
          // the recv call itself, or the wait that completes an irecv.
          std::uint64_t consume_start = ev.vclock;
          if (ev.kind == AnnEvent::Kind::kIrecv &&
              ev.wait_event_index >= 0) {
            consume_start =
                arank.events[static_cast<std::size_t>(ev.wait_event_index)]
                    .vclock;
          }
          const std::uint64_t interval_end =
              std::max(ev.interval_end, consume_start);
          std::vector<std::uint64_t> times;
          if (!options.postpone_receptions) {
            times.assign(static_cast<std::size_t>(plan.chunks),
                         consume_start);
          } else if (options.pattern == PatternMode::kIdeal) {
            times = ideal_wait_times(plan.chunks, consume_start,
                                     interval_end);
          } else {
            times = measured_wait_times(ev.elem_first_load, bounds,
                                        consume_start, interval_end);
          }
          // Post every chunk receive at the original receive call ("it
          // initiates the transfers of chunks and proceeds, waiting for the
          // chunks to be received as late as possible").
          std::vector<ReqId> chunk_reqs(
              static_cast<std::size_t>(plan.chunks));
          for (int j = 0; j < plan.chunks; ++j) {
            const std::uint64_t chunk_bytes =
                (bounds[static_cast<std::size_t>(j) + 1] -
                 bounds[static_cast<std::size_t>(j)]) *
                ev.elem_bytes;
            const ReqId req = next_request++;
            chunk_reqs[static_cast<std::size_t>(j)] = req;
            ops.push_back(TimedOp{
                ev.vclock, kPrioPost,
                Recv{ev.peer, chunk_tag(ev.tag, plan.pair_seq, j),
                     chunk_bytes, true, req}});
          }
          for (int j = 0; j < plan.chunks; ++j) {
            ops.push_back(
                TimedOp{times[static_cast<std::size_t>(j)], kPrioWait,
                        Wait{{chunk_reqs[static_cast<std::size_t>(j)]}}});
          }
          if (ev.kind == AnnEvent::Kind::kIrecv) replaced.insert(ev.request);
          break;
        }

        case AnnEvent::Kind::kWait: {
          std::vector<ReqId> remaining;
          remaining.reserve(ev.wait_requests.size());
          for (const ReqId req : ev.wait_requests) {
            if (replaced.count(req) == 0) remaining.push_back(req);
          }
          if (!remaining.empty()) {
            ops.push_back(
                TimedOp{ev.vclock, kPrioPost, Wait{std::move(remaining)}});
          }
          break;
        }

        case AnnEvent::Kind::kGlobalOp:
          ops.push_back(TimedOp{ev.vclock, kPrioPost, to_record(ev)});
          break;
      }
    }

    // Trailing cleanup: complete any chunk sends still in flight at the end
    // of the rank's execution (MPI_Finalize semantics).
    for (auto& [buffer, outstanding] : outstanding_sends) {
      if (!outstanding.empty()) {
        ops.push_back(TimedOp{arank.final_vclock, kPrioCleanup,
                              Wait{std::move(outstanding)}});
      }
    }

    out.ranks[static_cast<std::size_t>(rank)] =
        linearize(std::move(ops), arank.final_vclock);
  }
  return out;
}

}  // namespace osim::overlap
