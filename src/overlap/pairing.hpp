// Global send↔recv pairing over an annotated trace.
//
// The overlap transformation rewrites each side of a message independently
// (one trace per rank, as the paper's per-process Valgrind instances do),
// but chunking is only valid when *both* sides agree: the send and its
// matching recv must both be tracked, have the same element count, and use
// deterministic matching. This pre-pass pairs messages by MPI ordering
// (k-th send from src to dst with tag t matches the k-th such recv) and
// computes, per event, the agreed chunk count and the per-pair ordinal used
// to derive collision-free chunk tags.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "overlap/options.hpp"
#include "trace/annotated.hpp"

namespace osim::overlap {

struct EventPlan {
  /// 0 → leave this event unchunked; otherwise the agreed chunk count.
  int chunks = 0;
  /// Ordinal of this chunked message among chunked messages with the same
  /// (src, dst, tag), identical on both sides; used for chunk tags.
  std::int64_t pair_seq = -1;
};

struct Pairing {
  /// plans[rank][event_index]; non-p2p events have default EventPlan.
  std::vector<std::vector<EventPlan>> plans;
};

/// Throws osim::Error if point-to-point traffic cannot be paired (count or
/// size mismatch), mirroring trace::validate's pairwise checks.
Pairing pair_messages(const trace::AnnotatedTrace& trace,
                      const OverlapOptions& options);

/// Collision-free tag for chunk `chunk_index` of the `pair_seq`-th chunked
/// message with original tag `tag`. Application tags must be < 2^28,
/// pair_seq < 2^24, chunk_index < 2^8.
trace::Tag chunk_tag(trace::Tag tag, std::int64_t pair_seq, int chunk_index);

/// Inverse of chunk_tag. The original tag, per-pair ordinal and chunk index
/// encoded in a derived chunk tag, or nullopt when `tag` is a plain
/// application tag (chunk tags carry a marker bit application tags cannot).
struct ChunkTagParts {
  trace::Tag tag = 0;
  std::int64_t pair_seq = 0;
  int chunk_index = 0;
};
std::optional<ChunkTagParts> decode_chunk_tag(trace::Tag tag);

}  // namespace osim::overlap
