// The overlap transformation: turns an annotated trace into replayable
// Dimemas traces.
//
//   lower_original — the non-overlapped trace: every MPI event at its
//     original position, computation bursts reconstructed from virtual
//     clock gaps ("computation records specifying the length of the
//     original computation bursts ... and communication records specifying
//     the MPI message parameters").
//
//   transform — the overlapped trace. For every chunkable message pair
//     (see pairing.hpp) it applies the paper's four mechanisms:
//       * message chunking — the message becomes `chunks` independent
//         transfers with collision-free derived tags;
//       * advancing sends — each chunk is emitted as an immediate send at
//         the moment its final value was produced (measured pattern) or at
//         the uniform ideal instant;
//       * post-postponing receptions — chunk receives are posted at the
//         original receive call, and each chunk is waited at its first-use
//         instant (measured) or uniform ideal instant;
//       * double buffering — chunk transfers may use the eager protocol and
//         land before the receive is posted; with double buffering off
//         chunks are forced synchronous.
//     Buffer-reuse safety on the sender is preserved by a wait-all on the
//     previous message's chunk requests right before the first chunk of the
//     next message on the same buffer (two send buffers in rotation).
#pragma once

#include "overlap/options.hpp"
#include "trace/annotated.hpp"
#include "trace/trace.hpp"

namespace osim::overlap {

/// Lowers the annotated trace to the original (non-overlapped) trace.
trace::Trace lower_original(const trace::AnnotatedTrace& annotated);

/// Produces the overlapped trace under `options`. The result passes
/// trace::validate() whenever the input annotated trace is well formed.
trace::Trace transform(const trace::AnnotatedTrace& annotated,
                       const OverlapOptions& options);

}  // namespace osim::overlap
