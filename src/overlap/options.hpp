// Configuration of the overlap transformation (the paper's §II mechanisms).
#pragma once

#include <cstdint>

namespace osim::overlap {

enum class PatternMode : std::uint8_t {
  /// Use the measured production/consumption annotations (the paper's
  /// first overlapped trace: "identifies within the original computation
  /// bursts the points where partial data can be sent / is needed").
  kMeasured,
  /// Assume ideal patterns (the paper's second overlapped trace: "models
  /// ideal computation pattern by uniformly distributing the chunked
  /// transmissions/receptions throughout the original computation bursts").
  kIdeal,
};

struct OverlapOptions {
  /// Number of chunks per message ("the chunking technique in the
  /// overlapped case splits every MPI message in four chunks", §IV).
  /// Messages with fewer elements than chunks get one chunk per element.
  int chunks = 4;

  /// Auto-chunking: when > 0, the chunk count is derived per message so
  /// that each chunk is at most this many bytes (e.g. the platform's eager
  /// threshold, so every chunk can use the eager protocol), overriding
  /// `chunks`. Capped at 256 chunks per message.
  std::uint64_t auto_chunk_bytes = 0;

  PatternMode pattern = PatternMode::kMeasured;

  // --- mechanism toggles (for ablation; all on = the paper's technique) ---
  /// Advancing sends: emit each chunk at its last-update instant instead of
  /// at the original send call.
  bool advance_sends = true;
  /// Post-postponing receptions: wait for each chunk at its first-use
  /// instant instead of at the original receive call.
  bool postpone_receptions = true;
  /// Message chunking: when false, the whole message is treated as a single
  /// chunk (still advanced/postponed as a unit).
  bool chunking = true;
  /// Double buffering: when false, chunk transfers are forced synchronous
  /// (rendezvous) — an early-sent chunk cannot land at the receiver until
  /// the matching receive is posted, modelling the absence of a second
  /// buffer to land into.
  bool double_buffering = true;

  int effective_chunks(std::uint64_t num_elements,
                       std::uint64_t message_bytes) const {
    if (!chunking) return 1;
    std::uint64_t c = static_cast<std::uint64_t>(chunks);
    if (auto_chunk_bytes > 0) {
      c = (message_bytes + auto_chunk_bytes - 1) / auto_chunk_bytes;
      if (c < 1) c = 1;
      if (c > 256) c = 256;
    }
    return static_cast<int>(c < num_elements ? c : num_elements);
  }
};

}  // namespace osim::overlap
