// Network models.
//
// BusNetwork implements the published Dimemas interconnect model: a message
// occupies one output port at the source node, one input port at the
// destination node, and one global bus for `latency + bytes/bandwidth`
// seconds; messages queue FIFO (first-fit) when resources are exhausted.
//
// FairShareNetwork is the *detailed reference machine* of our reproduction
// (DESIGN.md substitutions): concurrent transfers share per-node links and a
// finite switch fabric with max-min fair rates that are recomputed whenever
// a flow starts or finishes. It is used as the stand-in for "a real run on
// the Marenostrum supercomputer" when calibrating the bus count (Table I).
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <vector>

#include "dimemas/events.hpp"
#include "dimemas/fairshare.hpp"
#include "dimemas/platform.hpp"
#include "metrics/collector.hpp"
#include "trace/record.hpp"

namespace osim::faults {
class FaultInjector;
}

namespace osim::dimemas {

struct Transfer {
  trace::Rank src = 0;
  trace::Rank dst = 0;
  std::uint64_t bytes = 0;
};

/// Invoked exactly once per submitted transfer, at arrival time, with the
/// simulated arrival timestamp. A second callback reports when the wire
/// time actually began (for visualization); it may be dropped.
using ArrivalFn = std::function<void(double)>;
using StartFn = std::function<void(double)>;

class Network {
 public:
  explicit Network(EventQueue& events) : events_(events) {}
  virtual ~Network() = default;

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Hands a message to the network at the current simulated time.
  virtual void submit(const Transfer& transfer, ArrivalFn on_arrival,
                      StartFn on_start = nullptr) = 0;

  /// Transfers currently in flight or queued (diagnostics).
  virtual std::size_t in_flight() const = 0;

  /// Wires the optional metrics collector (nullptr disables occupancy
  /// tracking). Called once, before the first submit. Tracking is passive:
  /// it never changes event scheduling, so replay results are bit-identical
  /// with a collector attached or not.
  virtual void set_collector(metrics::ReplayCollector* collector) {
    collector_ = collector;
  }

  /// Why a transfer submitted at the current instant would queue instead of
  /// starting (kNone = it would start immediately). Used by the replay
  /// engine to classify queueing delay as bus vs port contention.
  virtual metrics::QueueReason admission_block(const Transfer&) const {
    return metrics::QueueReason::kNone;
  }

  /// The model's fixed per-message delay (the latency term of the wait-time
  /// decomposition).
  virtual double fixed_latency_s() const = 0;

  /// Wires the optional fault injector (nullptr disables link-degradation
  /// sampling). Called once, before the first submit. With no injector the
  /// transfer-timing code paths are exactly the pre-fault ones, keeping
  /// fault-free replays bit-identical.
  void set_fault_injector(faults::FaultInjector* injector) {
    injector_ = injector;
  }

 protected:
  EventQueue& events_;
  metrics::ReplayCollector* collector_ = nullptr;
  faults::FaultInjector* injector_ = nullptr;
};

class BusNetwork final : public Network {
 public:
  BusNetwork(EventQueue& events, const Platform& platform);

  void submit(const Transfer& transfer, ArrivalFn on_arrival,
              StartFn on_start = nullptr) override;
  std::size_t in_flight() const override { return active_ + pending_.size(); }
  void set_collector(metrics::ReplayCollector* collector) override;
  metrics::QueueReason admission_block(const Transfer& transfer) const override;
  double fixed_latency_s() const override { return latency_s_; }

  /// End-to-end duration for `bytes` with no queueing: latency + bytes/bw.
  double wire_time(std::uint64_t bytes) const;
  /// Time the message occupies ports/buses: bytes/bw (latency pipelines).
  double serialization_time(std::uint64_t bytes) const;

 private:
  void record_occupancy(const Transfer& transfer) const;

  struct Pending {
    Transfer transfer;
    ArrivalFn on_arrival;
    StartFn on_start;
  };

  bool can_start(const Transfer& transfer) const;
  void start(Pending pending);
  void try_start_pending();

  const double latency_s_;
  const double overhead_s_;
  const double bytes_per_s_;
  const std::int32_t num_buses_;  // 0 = unlimited
  std::vector<std::int32_t> out_in_use_;
  std::vector<std::int32_t> in_in_use_;
  const std::int32_t output_ports_;
  const std::int32_t input_ports_;
  std::int32_t buses_in_use_ = 0;
  std::size_t active_ = 0;
  std::list<Pending> pending_;
};

class FairShareNetwork final : public Network {
 public:
  FairShareNetwork(EventQueue& events, const Platform& platform);

  void submit(const Transfer& transfer, ArrivalFn on_arrival,
              StartFn on_start = nullptr) override;
  std::size_t in_flight() const override;
  /// Includes the per-message overhead: the fair-share model charges it as
  /// additional fixed delay before the flow starts.
  double fixed_latency_s() const override { return latency_s_; }

 private:
  struct Flow {
    Transfer transfer;
    double remaining_bytes = 0.0;
    double rate = 0.0;
    /// Fault-injected bandwidth degradation, sampled once at activation.
    double rate_scale = 1.0;
    ArrivalFn on_arrival;
  };

  void activate(Flow flow);
  void update_progress();
  void rebalance();
  void on_completion_event(std::uint64_t generation);

  const double latency_s_;
  const FairShareCaps caps_;
  std::list<Flow> active_;
  std::size_t latency_stage_ = 0;  // flows still in their latency phase
  double last_update_ = 0.0;
  std::uint64_t generation_ = 0;
};

/// Factory dispatching on Platform::model.
std::unique_ptr<Network> make_network(EventQueue& events,
                                      const Platform& platform);

}  // namespace osim::dimemas
