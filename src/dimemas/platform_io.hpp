// Platform configuration files, in the spirit of Dimemas .cfg files: a
// line-oriented `key value` format so replay experiments can be described
// as data rather than code.
//
//   # overlapsim platform
//   nodes 64
//   model bus            # or: fairshare
//   bandwidth_mbps 250
//   latency_us 4
//   buses 12             # 0 = unlimited
//   input_ports 1
//   output_ports 1
//   eager_threshold 16384
//   relative_cpu_speed 1.0
//   fabric_links 8       # fairshare model only; 0 = unlimited
#pragma once

#include <iosfwd>
#include <string>

#include "dimemas/platform.hpp"

namespace osim::dimemas {

void write_platform(const Platform& platform, std::ostream& out);
std::string write_platform(const Platform& platform);
void write_platform_file(const Platform& platform, const std::string& path);

/// Parses a platform description; unknown keys and malformed values raise
/// osim::Error with a line number.
Platform read_platform(std::istream& in);
Platform read_platform(const std::string& text);
Platform read_platform_file(const std::string& path);

}  // namespace osim::dimemas
