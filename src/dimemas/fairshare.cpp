#include "dimemas/fairshare.hpp"

#include <algorithm>
#include <limits>

#include "common/expect.hpp"

namespace osim::dimemas {

// Progressive filling: grow every unfrozen flow's rate uniformly until some
// resource saturates; freeze the flows crossing that resource; repeat.
// Implemented in closed form per round: the bottleneck resource is the one
// with the smallest (remaining capacity / unfrozen flows crossing it).
std::vector<double> maxmin_rates(const std::vector<FlowSpec>& flows,
                                 const FairShareCaps& caps) {
  const std::size_t n = flows.size();
  std::vector<double> rates(n, 0.0);
  if (n == 0) return rates;
  OSIM_CHECK(caps.num_nodes > 0);
  OSIM_CHECK(caps.link_out_Bps > 0.0 && caps.link_in_Bps > 0.0);

  // Resources: out-links [0, N), in-links [N, 2N), fabric 2N (optional).
  const std::size_t num_nodes = static_cast<std::size_t>(caps.num_nodes);
  const bool has_fabric = caps.fabric_Bps > 0.0;
  const std::size_t num_resources = 2 * num_nodes + (has_fabric ? 1 : 0);

  std::vector<double> remaining(num_resources, 0.0);
  for (std::size_t i = 0; i < num_nodes; ++i) {
    remaining[i] = caps.link_out_Bps;
    remaining[num_nodes + i] = caps.link_in_Bps;
  }
  if (has_fabric) remaining[2 * num_nodes] = caps.fabric_Bps;

  std::vector<std::size_t> active_count(num_resources, 0);
  auto resources_of = [&](const FlowSpec& f, std::size_t out[3]) {
    std::size_t k = 0;
    OSIM_CHECK(f.src_node >= 0 && f.src_node < caps.num_nodes);
    OSIM_CHECK(f.dst_node >= 0 && f.dst_node < caps.num_nodes);
    out[k++] = static_cast<std::size_t>(f.src_node);
    out[k++] = num_nodes + static_cast<std::size_t>(f.dst_node);
    if (has_fabric) out[k++] = 2 * num_nodes;
    return k;
  };

  std::vector<bool> frozen(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t res[3];
    const std::size_t k = resources_of(flows[i], res);
    for (std::size_t j = 0; j < k; ++j) ++active_count[res[j]];
  }

  std::size_t flows_left = n;
  while (flows_left > 0) {
    // Smallest fair share among resources with unfrozen flows.
    double bottleneck_share = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < num_resources; ++r) {
      if (active_count[r] == 0) continue;
      const double share =
          remaining[r] / static_cast<double>(active_count[r]);
      bottleneck_share = std::min(bottleneck_share, share);
    }
    OSIM_CHECK(bottleneck_share < std::numeric_limits<double>::infinity());

    // Raise all unfrozen flows by the bottleneck share and freeze the flows
    // that cross a now-saturated resource.
    std::vector<bool> saturated(num_resources, false);
    for (std::size_t r = 0; r < num_resources; ++r) {
      if (active_count[r] == 0) continue;
      const double share =
          remaining[r] / static_cast<double>(active_count[r]);
      // Tolerance handles repeated-division rounding across rounds.
      if (share <= bottleneck_share * (1.0 + 1e-12)) saturated[r] = true;
    }

    for (std::size_t i = 0; i < n; ++i) {
      if (frozen[i]) continue;
      rates[i] += bottleneck_share;
      std::size_t res[3];
      const std::size_t k = resources_of(flows[i], res);
      bool freeze = false;
      for (std::size_t j = 0; j < k; ++j) {
        if (saturated[res[j]]) freeze = true;
      }
      if (!freeze) continue;
      frozen[i] = true;
      --flows_left;
      for (std::size_t j = 0; j < k; ++j) {
        remaining[res[j]] -= bottleneck_share;
        --active_count[res[j]];
      }
    }
    // Unfrozen flows consumed bottleneck_share from their resources too.
    for (std::size_t r = 0; r < num_resources; ++r) {
      if (active_count[r] > 0) {
        remaining[r] -=
            bottleneck_share * static_cast<double>(active_count[r]);
        if (remaining[r] < 0.0) remaining[r] = 0.0;
      }
    }
  }
  return rates;
}

}  // namespace osim::dimemas
