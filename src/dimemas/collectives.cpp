#include "dimemas/collectives.hpp"

#include <algorithm>

#include "common/expect.hpp"

namespace osim::dimemas {

using trace::CollectiveKind;
using trace::CpuBurst;
using trace::GlobalOp;
using trace::Rank;
using trace::Record;
using trace::Recv;
using trace::ReqId;
using trace::Send;
using trace::Tag;
using trace::Trace;
using trace::Wait;

const char* collective_algo_name(CollectiveAlgo algo) {
  switch (algo) {
    case CollectiveAlgo::kBinomialTree:
      return "binomial-tree";
    case CollectiveAlgo::kLinear:
      return "linear";
    case CollectiveAlgo::kRecursiveDoubling:
      return "recursive-doubling";
  }
  OSIM_UNREACHABLE("bad CollectiveAlgo");
}

bool has_collectives(const Trace& trace) {
  for (const auto& stream : trace.ranks) {
    for (const auto& rec : stream) {
      if (std::holds_alternative<GlobalOp>(rec)) return true;
    }
  }
  return false;
}

trace::Tag collective_tag(std::int64_t sequence, int phase) {
  OSIM_CHECK(sequence >= 0);
  OSIM_CHECK(phase >= 0 && phase < 16);
  return -(sequence * 16 + phase + 1);
}

namespace {

// Message phases within one collective op.
constexpr int kPhaseFanIn = 0;    // barrier up / reduce / gather
constexpr int kPhaseFanOut = 1;   // barrier down / bcast / scatter
constexpr int kPhaseExchange = 2; // alltoall rounds
constexpr int kPhaseRound0 = 3;   // log-round algorithms: phase per round
                                  // (phases 3..15 → up to 8192 ranks)

struct Expander {
  const Trace& in;
  Rank rank;
  std::vector<Record>* out;
  ReqId next_request;
  CollectiveAlgo algo = CollectiveAlgo::kBinomialTree;

  Rank size() const { return in.num_ranks; }

  void send_to(Rank dest, Tag tag, std::uint64_t bytes) {
    out->push_back(Send{dest, tag, bytes, false, trace::kNoRequest});
  }
  void recv_from(Rank src, Tag tag, std::uint64_t bytes) {
    out->push_back(Recv{src, tag, bytes, false, trace::kNoRequest});
  }

  /// Subtree size of virtual rank `vrank` in a binomial tree over P nodes:
  /// the number of ranks whose fan-out messages flow through vrank
  /// (including itself).
  static Rank subtree_size(Rank vrank, Rank p) {
    if (vrank == 0) return p;
    // vrank's subtree spans [vrank, vrank + 2^k) clipped to P, where 2^k is
    // the lowest set bit of vrank.
    const Rank lowbit = vrank & (-vrank);
    return std::min<Rank>(lowbit, p - vrank);
  }

  /// Binomial fan-in to `root`. bytes_of(child_vrank) gives the payload on
  /// the edge child → parent.
  template <typename BytesFn>
  void fan_in(Rank root, Tag tag, BytesFn bytes_of) {
    const Rank p = size();
    const Rank vrank = static_cast<Rank>((rank - root + p) % p);
    Rank mask = 1;
    while (mask < p) {
      if ((vrank & mask) == 0) {
        const Rank child = vrank | mask;
        if (child < p) {
          recv_from(static_cast<Rank>((child + root) % p), tag,
                    bytes_of(child));
        }
      } else {
        const Rank parent = vrank & ~mask;
        send_to(static_cast<Rank>((parent + root) % p), tag, bytes_of(vrank));
        break;
      }
      mask <<= 1;
    }
  }

  /// Binomial fan-out from `root`. bytes_of(child_vrank) gives the payload
  /// on the edge parent → child.
  template <typename BytesFn>
  void fan_out(Rank root, Tag tag, BytesFn bytes_of) {
    const Rank p = size();
    const Rank vrank = static_cast<Rank>((rank - root + p) % p);
    Rank mask = 1;
    while (mask < p) {
      if (vrank & mask) {
        const Rank parent = vrank & ~mask;
        recv_from(static_cast<Rank>((parent + root) % p), tag,
                  bytes_of(vrank));
        break;
      }
      mask <<= 1;
    }
    mask >>= 1;
    while (mask > 0) {
      const Rank child = vrank | mask;
      if (child < p && child != vrank) {
        send_to(static_cast<Rank>((child + root) % p), tag, bytes_of(child));
      }
      mask >>= 1;
    }
  }

  /// Flat star fan-in: the root receives one message from every peer, in
  /// rank order; peers just send.
  template <typename BytesFn>
  void linear_fan_in(Rank root, Tag tag, BytesFn bytes_of) {
    const Rank p = size();
    if (rank == root) {
      for (Rank v = 1; v < p; ++v) {
        recv_from(static_cast<Rank>((v + root) % p), tag, bytes_of(v));
      }
    } else {
      const Rank vrank = static_cast<Rank>((rank - root + p) % p);
      send_to(root, tag, bytes_of(vrank));
    }
  }

  /// Flat star fan-out: the root sends one message to every peer.
  template <typename BytesFn>
  void linear_fan_out(Rank root, Tag tag, BytesFn bytes_of) {
    const Rank p = size();
    if (rank == root) {
      for (Rank v = 1; v < p; ++v) {
        send_to(static_cast<Rank>((v + root) % p), tag, bytes_of(v));
      }
    } else {
      const Rank vrank = static_cast<Rank>((rank - root + p) % p);
      recv_from(root, tag, bytes_of(vrank));
    }
  }

  /// Dissemination exchange (works for any P): ceil(log2 P) rounds; in
  /// round k each rank sends to (rank + 2^k) mod P and receives from
  /// (rank - 2^k) mod P, using irecv+send+wait to stay deadlock-free.
  /// Implements the dissemination barrier and, with payloads, the
  /// recursive-doubling-style allreduce.
  void dissemination(std::int64_t sequence, std::uint64_t bytes) {
    const Rank p = size();
    int round = 0;
    for (Rank step = 1; step < p; step <<= 1, ++round) {
      const Rank dst = static_cast<Rank>((rank + step) % p);
      const Rank src = static_cast<Rank>((rank - step + p) % p);
      const ReqId req = next_request++;
      // One tag phase per round keeps rounds apart (needed when src == dst,
      // e.g. P = 2) without colliding with any other op's tags.
      const Tag round_tag = collective_tag(sequence, kPhaseRound0 + round);
      out->push_back(Recv{src, round_tag, bytes, true, req});
      out->push_back(Send{dst, round_tag, bytes, false, trace::kNoRequest});
      out->push_back(Wait{{req}});
    }
  }

  template <typename TreeFn, typename LinearFn>
  void fan_in_dispatch(Rank root, Tag tag, TreeFn bytes_of,
                       LinearFn linear_bytes_of) {
    if (algo == CollectiveAlgo::kLinear) {
      linear_fan_in(root, tag, linear_bytes_of);
    } else {
      fan_in(root, tag, bytes_of);
    }
  }

  template <typename TreeFn, typename LinearFn>
  void fan_out_dispatch(Rank root, Tag tag, TreeFn bytes_of,
                        LinearFn linear_bytes_of) {
    if (algo == CollectiveAlgo::kLinear) {
      linear_fan_out(root, tag, linear_bytes_of);
    } else {
      fan_out(root, tag, bytes_of);
    }
  }

  void expand(const GlobalOp& op) {
    const Rank p = size();
    if (p == 1) return;  // collectives over one rank are no-ops
    const Tag up = collective_tag(op.sequence, kPhaseFanIn);
    const Tag down = collective_tag(op.sequence, kPhaseFanOut);
    const std::uint64_t bytes = op.bytes;
    const bool power_of_two = (p & (p - 1)) == 0;
    if (algo == CollectiveAlgo::kRecursiveDoubling) {
      // Log-round variants where the communication pattern allows; rooted
      // operations fall back to the binomial trees below.
      if (op.kind == CollectiveKind::kBarrier) {
        dissemination(op.sequence, 0);
        return;
      }
      if (op.kind == CollectiveKind::kAllreduce && power_of_two) {
        // Recursive doubling: log2(P) pairwise exchanges of the full
        // payload; the dissemination schedule has the same cost shape.
        dissemination(op.sequence, bytes);
        return;
      }
      if (op.kind == CollectiveKind::kAllgather && power_of_two) {
        // Bruck/recursive-doubling allgather: round k exchanges 2^k blocks.
        Rank accumulated = 1;
        int round = 0;
        for (Rank step = 1; step < p; step <<= 1, ++round) {
          const Rank dst = static_cast<Rank>((rank + step) % p);
          const Rank src = static_cast<Rank>((rank - step + p) % p);
          const ReqId req = next_request++;
          const Tag round_tag =
              collective_tag(op.sequence, kPhaseRound0 + round);
          const std::uint64_t round_bytes =
              bytes * static_cast<std::uint64_t>(accumulated);
          out->push_back(Recv{src, round_tag, round_bytes, true, req});
          out->push_back(
              Send{dst, round_tag, round_bytes, false, trace::kNoRequest});
          out->push_back(Wait{{req}});
          accumulated = static_cast<Rank>(
              std::min<Rank>(p, accumulated * 2));
        }
        return;
      }
    }
    switch (op.kind) {
      case CollectiveKind::kBarrier: {
        auto zero = [](Rank) { return std::uint64_t{0}; };
        fan_in_dispatch(0, up, zero, zero);
        fan_out_dispatch(0, down, zero, zero);
        return;
      }
      case CollectiveKind::kBcast: {
        auto whole = [bytes](Rank) { return bytes; };
        fan_out_dispatch(op.root, down, whole, whole);
        return;
      }
      case CollectiveKind::kReduce: {
        auto whole = [bytes](Rank) { return bytes; };
        fan_in_dispatch(op.root, up, whole, whole);
        return;
      }
      case CollectiveKind::kAllreduce: {
        auto whole = [bytes](Rank) { return bytes; };
        fan_in_dispatch(0, up, whole, whole);
        fan_out_dispatch(0, down, whole, whole);
        return;
      }
      case CollectiveKind::kGather: {
        auto subtree = [bytes, p](Rank v) {
          return bytes * static_cast<std::uint64_t>(subtree_size(v, p));
        };
        auto own = [bytes, p](Rank) { return bytes; };
        (void)p;
        fan_in_dispatch(op.root, up, subtree, own);
        return;
      }
      case CollectiveKind::kScatter: {
        auto subtree = [bytes, p](Rank v) {
          return bytes * static_cast<std::uint64_t>(subtree_size(v, p));
        };
        auto own = [bytes, p](Rank) { return bytes; };
        (void)p;
        fan_out_dispatch(op.root, down, subtree, own);
        return;
      }
      case CollectiveKind::kAllgather: {
        // Gather everyone's `bytes` to rank 0, then broadcast the
        // concatenation (P * bytes) back out.
        auto subtree = [bytes, p](Rank v) {
          return bytes * static_cast<std::uint64_t>(subtree_size(v, p));
        };
        auto own = [bytes, p](Rank) { return bytes; };
        auto all = [bytes, p](Rank) {
          return bytes * static_cast<std::uint64_t>(p);
        };
        fan_in_dispatch(0, up, subtree, own);
        fan_out_dispatch(0, down, all, all);
        return;
      }
      case CollectiveKind::kScan: {
        // Inclusive prefix reduction: a linear chain rank r-1 -> r carrying
        // the running prefix (matches the runtime's implementation).
        if (rank > 0) recv_from(rank - 1, up, bytes);
        if (rank + 1 < p) send_to(rank + 1, up, bytes);
        return;
      }
      case CollectiveKind::kAlltoall: {
        // Pairwise exchange: round i sends to (rank+i)%P while receiving
        // from (rank-i+P)%P. irecv + send + wait keeps it deadlock-free
        // under rendezvous.
        const Tag xtag = collective_tag(op.sequence, kPhaseExchange);
        for (Rank i = 1; i < p; ++i) {
          const Rank dst = static_cast<Rank>((rank + i) % p);
          const Rank src = static_cast<Rank>((rank - i + p) % p);
          const ReqId req = next_request++;
          out->push_back(Recv{src, xtag, bytes, true, req});
          out->push_back(Send{dst, xtag, bytes, false, trace::kNoRequest});
          out->push_back(Wait{{req}});
        }
        return;
      }
    }
    OSIM_UNREACHABLE("bad CollectiveKind");
  }
};

ReqId max_request_id(const std::vector<Record>& stream) {
  ReqId max_id = -1;
  for (const auto& rec : stream) {
    if (const auto* send = std::get_if<Send>(&rec)) {
      if (send->immediate) max_id = std::max(max_id, send->request);
    } else if (const auto* recv = std::get_if<Recv>(&rec)) {
      if (recv->immediate) max_id = std::max(max_id, recv->request);
    }
  }
  return max_id;
}

}  // namespace

Trace expand_collectives(const Trace& trace, CollectiveAlgo algo) {
  Trace out = Trace::make(trace.num_ranks, trace.mips, trace.app);
  for (Rank rank = 0; rank < trace.num_ranks; ++rank) {
    const auto& stream = trace.ranks[static_cast<std::size_t>(rank)];
    auto& out_stream = out.ranks[static_cast<std::size_t>(rank)];
    out_stream.reserve(stream.size());
    Expander expander{trace, rank, &out_stream, max_request_id(stream) + 1,
                      algo};
    for (const Record& rec : stream) {
      if (const auto* op = std::get_if<GlobalOp>(&rec)) {
        expander.expand(*op);
      } else {
        out_stream.push_back(rec);
      }
    }
  }
  return out;
}

}  // namespace osim::dimemas
