#include "dimemas/network.hpp"

#include <algorithm>
#include <limits>

#include "common/expect.hpp"
#include "faults/injector.hpp"

namespace osim::dimemas {

// ---------------------------------------------------------------------------
// BusNetwork
// ---------------------------------------------------------------------------

BusNetwork::BusNetwork(EventQueue& events, const Platform& platform)
    : Network(events),
      latency_s_(platform.latency_s()),
      overhead_s_(platform.per_message_overhead_s()),
      bytes_per_s_(platform.bandwidth_Bps()),
      num_buses_(platform.num_buses),
      out_in_use_(static_cast<std::size_t>(platform.num_nodes), 0),
      in_in_use_(static_cast<std::size_t>(platform.num_nodes), 0),
      output_ports_(platform.output_ports),
      input_ports_(platform.input_ports) {
  OSIM_CHECK(platform.num_nodes > 0);
  OSIM_CHECK(bytes_per_s_ > 0.0);
  OSIM_CHECK(latency_s_ >= 0.0);
  OSIM_CHECK(num_buses_ >= 0);
  OSIM_CHECK(output_ports_ > 0 && input_ports_ > 0);
}

double BusNetwork::wire_time(std::uint64_t bytes) const {
  return latency_s_ + static_cast<double>(bytes) / bytes_per_s_;
}

double BusNetwork::serialization_time(std::uint64_t bytes) const {
  return overhead_s_ + static_cast<double>(bytes) / bytes_per_s_;
}

bool BusNetwork::can_start(const Transfer& transfer) const {
  if (num_buses_ > 0 && buses_in_use_ >= num_buses_) return false;
  if (out_in_use_[static_cast<std::size_t>(transfer.src)] >= output_ports_)
    return false;
  if (in_in_use_[static_cast<std::size_t>(transfer.dst)] >= input_ports_)
    return false;
  return true;
}

void BusNetwork::set_collector(metrics::ReplayCollector* collector) {
  collector_ = collector;
  if (collector_ == nullptr) return;
  collector_->bus_tracker().set_capacity(num_buses_);
  for (std::size_t n = 0; n < out_in_use_.size(); ++n) {
    const auto node = static_cast<trace::Rank>(n);
    collector_->out_tracker(node).set_capacity(output_ports_);
    collector_->in_tracker(node).set_capacity(input_ports_);
  }
}

metrics::QueueReason BusNetwork::admission_block(
    const Transfer& transfer) const {
  if (num_buses_ > 0 && buses_in_use_ >= num_buses_) {
    return metrics::QueueReason::kBus;
  }
  if (out_in_use_[static_cast<std::size_t>(transfer.src)] >= output_ports_) {
    return metrics::QueueReason::kOutPort;
  }
  if (in_in_use_[static_cast<std::size_t>(transfer.dst)] >= input_ports_) {
    return metrics::QueueReason::kInPort;
  }
  return metrics::QueueReason::kNone;
}

void BusNetwork::record_occupancy(const Transfer& transfer) const {
  if (collector_ == nullptr) return;
  const double now = events_.now();
  // The bus pool level is the number of transfers holding resources, which
  // is meaningful (and tracked) even when the pool is unbounded.
  collector_->bus_tracker().set_level(now,
                                      static_cast<std::int64_t>(active_));
  collector_->out_tracker(transfer.src)
      .set_level(now, out_in_use_[static_cast<std::size_t>(transfer.src)]);
  collector_->in_tracker(transfer.dst)
      .set_level(now, in_in_use_[static_cast<std::size_t>(transfer.dst)]);
}

void BusNetwork::start(Pending pending) {
  const Transfer transfer = pending.transfer;
  ++out_in_use_[static_cast<std::size_t>(transfer.src)];
  ++in_in_use_[static_cast<std::size_t>(transfer.dst)];
  if (num_buses_ > 0) ++buses_in_use_;
  ++active_;
  record_occupancy(transfer);
  if (pending.on_start) pending.on_start(events_.now());
  // Ports and buses are held for the serialization time (bytes/bandwidth);
  // the wire latency is pipelined and does not occupy resources, so
  // back-to-back messages pay the latency only once on the critical path.
  // Fault-injected link degradation (sampled once, when the wire time
  // begins) scales the serialization time and inflates the latency.
  double serialization = serialization_time(transfer.bytes);
  double arrival_latency = latency_s_;
  if (injector_ != nullptr && injector_->has_link_faults()) {
    const auto effect =
        injector_->link_effect(transfer.src, transfer.dst, events_.now());
    serialization = overhead_s_ + (static_cast<double>(transfer.bytes) /
                                   bytes_per_s_) /
                                      effect.bandwidth_scale;
    arrival_latency += effect.extra_latency_s;
  }
  const double release = events_.now() + serialization;
  const double arrival = release + arrival_latency;
  events_.schedule(release, [this, transfer] {
    --out_in_use_[static_cast<std::size_t>(transfer.src)];
    --in_in_use_[static_cast<std::size_t>(transfer.dst)];
    if (num_buses_ > 0) --buses_in_use_;
    --active_;
    record_occupancy(transfer);
    // Freed resources may unblock queued transfers.
    try_start_pending();
  });
  events_.schedule(arrival,
                   [this, on_arrival = std::move(pending.on_arrival)] {
                     on_arrival(events_.now());
                   });
}

void BusNetwork::try_start_pending() {
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (can_start(it->transfer)) {
      Pending p = std::move(*it);
      it = pending_.erase(it);
      start(std::move(p));
    } else {
      ++it;
    }
  }
}

void BusNetwork::submit(const Transfer& transfer, ArrivalFn on_arrival,
                        StartFn on_start) {
  OSIM_CHECK(transfer.src >= 0 &&
             transfer.src < static_cast<trace::Rank>(out_in_use_.size()));
  OSIM_CHECK(transfer.dst >= 0 &&
             transfer.dst < static_cast<trace::Rank>(in_in_use_.size()));
  Pending pending{transfer, std::move(on_arrival), std::move(on_start)};
  if (pending_.empty() && can_start(transfer)) {
    start(std::move(pending));
  } else {
    pending_.push_back(std::move(pending));
    try_start_pending();  // first-fit: later transfers may still fit
  }
}

// ---------------------------------------------------------------------------
// FairShareNetwork
// ---------------------------------------------------------------------------

namespace {

// Sub-byte residue below which a flow counts as fully transferred.
constexpr double kCompletionEpsBytes = 1e-3;

FairShareCaps caps_from(const Platform& platform) {
  FairShareCaps caps;
  caps.num_nodes = platform.num_nodes;
  caps.link_out_Bps = platform.bandwidth_Bps();
  caps.link_in_Bps = platform.bandwidth_Bps();
  caps.fabric_Bps = platform.fabric_capacity_links > 0.0
                        ? platform.fabric_capacity_links *
                              platform.bandwidth_Bps()
                        : 0.0;
  return caps;
}

}  // namespace

FairShareNetwork::FairShareNetwork(EventQueue& events,
                                   const Platform& platform)
    // The fair-share model has no endpoint-occupancy stage; the per-message
    // overhead is charged as additional fixed delay before the flow starts.
    : Network(events),
      latency_s_(platform.latency_s() + platform.per_message_overhead_s()),
      caps_(caps_from(platform)) {
  OSIM_CHECK(caps_.num_nodes > 0);
  OSIM_CHECK(caps_.link_out_Bps > 0.0);
}

std::size_t FairShareNetwork::in_flight() const {
  return active_.size() + latency_stage_;
}

void FairShareNetwork::submit(const Transfer& transfer, ArrivalFn on_arrival,
                              StartFn on_start) {
  OSIM_CHECK(transfer.src >= 0 && transfer.src < caps_.num_nodes);
  OSIM_CHECK(transfer.dst >= 0 && transfer.dst < caps_.num_nodes);
  if (on_start) on_start(events_.now());
  // Fault-injected extra latency is charged in the fixed-delay stage
  // (sampled at submit); bandwidth degradation is sampled at activation.
  double entry_latency = latency_s_;
  if (injector_ != nullptr && injector_->has_link_faults()) {
    entry_latency += injector_
                         ->link_effect(transfer.src, transfer.dst,
                                       events_.now(), /*count=*/false)
                         .extra_latency_s;
  }
  if (transfer.bytes == 0) {
    events_.schedule_after(entry_latency,
                           [on_arrival = std::move(on_arrival), this] {
                             on_arrival(events_.now());
                           });
    return;
  }
  Flow flow;
  flow.transfer = transfer;
  flow.remaining_bytes = static_cast<double>(transfer.bytes);
  flow.on_arrival = std::move(on_arrival);
  ++latency_stage_;
  events_.schedule_after(entry_latency,
                         [this, flow = std::move(flow)]() mutable {
    --latency_stage_;
    activate(std::move(flow));
  });
}

void FairShareNetwork::activate(Flow flow) {
  update_progress();
  if (injector_ != nullptr && injector_->has_link_faults()) {
    flow.rate_scale = injector_
                          ->link_effect(flow.transfer.src, flow.transfer.dst,
                                        events_.now())
                          .bandwidth_scale;
  }
  active_.push_back(std::move(flow));
  if (collector_ != nullptr) {
    // The fair-share model has no bus pool; track the concurrent flow count
    // on the (uncapped) bus tracker instead.
    collector_->bus_tracker().set_level(
        events_.now(), static_cast<std::int64_t>(active_.size()));
  }
  rebalance();
}

void FairShareNetwork::update_progress() {
  const double elapsed = events_.now() - last_update_;
  if (elapsed > 0.0) {
    for (Flow& flow : active_) {
      flow.remaining_bytes =
          std::max(0.0, flow.remaining_bytes - flow.rate * elapsed);
    }
  }
  last_update_ = events_.now();
}

void FairShareNetwork::rebalance() {
  ++generation_;  // invalidate any previously scheduled completion event
  if (active_.empty()) return;

  std::vector<FlowSpec> specs;
  specs.reserve(active_.size());
  for (const Flow& flow : active_) {
    specs.push_back(FlowSpec{flow.transfer.src, flow.transfer.dst});
  }
  const std::vector<double> rates = maxmin_rates(specs, caps_);

  double next_completion = std::numeric_limits<double>::infinity();
  std::size_t i = 0;
  for (Flow& flow : active_) {
    // rate_scale == 1.0 leaves the fair-share rate bit-identical (IEEE
    // multiplication by 1.0 is exact), so undegraded replays don't change.
    flow.rate = rates[i++] * flow.rate_scale;
    OSIM_CHECK(flow.rate > 0.0);
    next_completion =
        std::min(next_completion, flow.remaining_bytes / flow.rate);
  }
  const std::uint64_t generation = generation_;
  events_.schedule_after(next_completion,
                         [this, generation] { on_completion_event(generation); });
}

void FairShareNetwork::on_completion_event(std::uint64_t generation) {
  if (generation != generation_) return;  // superseded by a rebalance
  update_progress();

  std::vector<ArrivalFn> done;
  double min_remaining = std::numeric_limits<double>::infinity();
  for (const Flow& flow : active_) {
    min_remaining = std::min(min_remaining, flow.remaining_bytes);
  }
  for (auto it = active_.begin(); it != active_.end();) {
    // The minimum-residue flow always completes here, protecting against
    // floating-point drift that could otherwise stall the event loop.
    if (it->remaining_bytes <= kCompletionEpsBytes ||
        it->remaining_bytes <= min_remaining) {
      done.push_back(std::move(it->on_arrival));
      it = active_.erase(it);
    } else {
      ++it;
    }
  }
  OSIM_CHECK_MSG(!done.empty(), "completion event with no finished flow");
  if (collector_ != nullptr) {
    collector_->bus_tracker().set_level(
        events_.now(), static_cast<std::int64_t>(active_.size()));
  }
  rebalance();
  for (ArrivalFn& fn : done) fn(events_.now());
}

// ---------------------------------------------------------------------------

std::unique_ptr<Network> make_network(EventQueue& events,
                                      const Platform& platform) {
  switch (platform.model) {
    case NetworkModelKind::kBus:
      return std::make_unique<BusNetwork>(events, platform);
    case NetworkModelKind::kFairShare:
      return std::make_unique<FairShareNetwork>(events, platform);
  }
  OSIM_UNREACHABLE("bad NetworkModelKind");
}

}  // namespace osim::dimemas
