#include "dimemas/platform.hpp"

#include "common/strings.hpp"

namespace osim::dimemas {

Platform Platform::marenostrum(std::int32_t num_nodes, std::int32_t buses) {
  Platform p;
  p.num_nodes = num_nodes;
  p.model = NetworkModelKind::kBus;
  p.bandwidth_MBps = 250.0;  // Myrinet unidirectional bandwidth (paper §IV)
  p.latency_us = 4.0;        // Myrinet/GM short-message latency class
  p.num_buses = buses;
  p.input_ports = 1;
  p.output_ports = 1;
  return p;
}

Platform Platform::reference_machine(std::int32_t num_nodes) {
  Platform p;
  p.num_nodes = num_nodes;
  p.model = NetworkModelKind::kFairShare;
  p.bandwidth_MBps = 250.0;
  p.latency_us = 4.0;  // same link class as the bus-model platform
  // A finite fabric: about half of the nodes can stream at full link rate
  // simultaneously, which produces the global congestion the bus
  // calibration (Table I) has to chase.
  p.fabric_capacity_links = num_nodes <= 4 ? 2.0 : num_nodes / 2.0;
  return p;
}

std::string Platform::describe() const {
  const char* kind =
      model == NetworkModelKind::kBus ? "bus" : "fair-share";
  return strprintf(
      "%d nodes, %s network, %.6g MB/s, %.6g us latency, buses=%d, "
      "ports=%d/%d, eager<=%llu B",
      num_nodes, kind, bandwidth_MBps, latency_us, num_buses, input_ports,
      output_ports,
      static_cast<unsigned long long>(eager_threshold_bytes));
}

}  // namespace osim::dimemas
