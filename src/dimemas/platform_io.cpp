#include "dimemas/platform_io.hpp"

#include <fstream>
#include <sstream>

#include "common/expect.hpp"
#include "common/strings.hpp"

namespace osim::dimemas {

void write_platform(const Platform& p, std::ostream& out) {
  out << "# overlapsim platform\n";
  out << "nodes " << p.num_nodes << "\n";
  out << "model "
      << (p.model == NetworkModelKind::kBus ? "bus" : "fairshare") << "\n";
  out << "bandwidth_mbps " << strprintf("%.17g", p.bandwidth_MBps) << "\n";
  out << "latency_us " << strprintf("%.17g", p.latency_us) << "\n";
  out << "overhead_us " << strprintf("%.17g", p.per_message_overhead_us)
      << "\n";
  out << "buses " << p.num_buses << "\n";
  out << "input_ports " << p.input_ports << "\n";
  out << "output_ports " << p.output_ports << "\n";
  out << "eager_threshold " << p.eager_threshold_bytes << "\n";
  out << "relative_cpu_speed " << strprintf("%.17g", p.relative_cpu_speed)
      << "\n";
  out << "fabric_links " << strprintf("%.17g", p.fabric_capacity_links)
      << "\n";
}

std::string write_platform(const Platform& p) {
  std::ostringstream os;
  write_platform(p, os);
  return os.str();
}

void write_platform_file(const Platform& p, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw Error("cannot open platform file for writing: " + path);
  write_platform(p, out);
  if (!out) throw Error("error writing platform file: " + path);
}

Platform read_platform(std::istream& in) {
  Platform p;
  bool have_nodes = false;
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const auto tokens = split_ws(line);
    if (tokens.empty()) continue;
    auto fail = [&](const std::string& why) -> void {
      throw Error(strprintf("platform file line %d: %s", line_number,
                            why.c_str()));
    };
    if (tokens.size() != 2) fail("expected 'key value'");
    const std::string& key = tokens[0];
    const std::string& value = tokens[1];
    auto as_int = [&]() {
      const auto parsed = parse_i64(value);
      if (!parsed) fail("bad integer '" + value + "'");
      return static_cast<std::int32_t>(*parsed);
    };
    auto as_double = [&]() {
      const auto parsed = parse_f64(value);
      if (!parsed) fail("bad number '" + value + "'");
      return *parsed;
    };
    if (key == "nodes") {
      p.num_nodes = as_int();
      have_nodes = true;
      if (p.num_nodes <= 0) fail("nodes must be positive");
    } else if (key == "model") {
      if (value == "bus") {
        p.model = NetworkModelKind::kBus;
      } else if (value == "fairshare") {
        p.model = NetworkModelKind::kFairShare;
      } else {
        fail("unknown model '" + value + "' (bus | fairshare)");
      }
    } else if (key == "bandwidth_mbps") {
      p.bandwidth_MBps = as_double();
      if (p.bandwidth_MBps <= 0) fail("bandwidth must be positive");
    } else if (key == "latency_us") {
      p.latency_us = as_double();
      if (p.latency_us < 0) fail("latency must be non-negative");
    } else if (key == "overhead_us") {
      p.per_message_overhead_us = as_double();
      if (p.per_message_overhead_us < 0) fail("overhead must be non-negative");
    } else if (key == "buses") {
      p.num_buses = as_int();
      if (p.num_buses < 0) fail("buses must be non-negative");
    } else if (key == "input_ports") {
      p.input_ports = as_int();
      if (p.input_ports <= 0) fail("input_ports must be positive");
    } else if (key == "output_ports") {
      p.output_ports = as_int();
      if (p.output_ports <= 0) fail("output_ports must be positive");
    } else if (key == "eager_threshold") {
      const auto parsed = parse_u64(value);
      if (!parsed) fail("bad unsigned integer '" + value + "'");
      p.eager_threshold_bytes = *parsed;
    } else if (key == "relative_cpu_speed") {
      p.relative_cpu_speed = as_double();
      if (p.relative_cpu_speed <= 0) fail("cpu speed must be positive");
    } else if (key == "fabric_links") {
      p.fabric_capacity_links = as_double();
    } else {
      fail("unknown key '" + key + "'");
    }
  }
  if (!have_nodes) throw Error("platform file missing 'nodes'");
  return p;
}

Platform read_platform(const std::string& text) {
  std::istringstream is(text);
  return read_platform(is);
}

Platform read_platform_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open platform file: " + path);
  return read_platform(in);
}

}  // namespace osim::dimemas
