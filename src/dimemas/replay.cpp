#include "dimemas/replay.hpp"

#include <algorithm>
#include <deque>
#include <memory>
#include <unordered_map>

#include "common/arena.hpp"
#include "common/expect.hpp"
#include "common/inline_function.hpp"
#include "common/strings.hpp"
#include "dimemas/collectives.hpp"
#include "dimemas/events.hpp"
#include "dimemas/matching.hpp"
#include "dimemas/network.hpp"
#include "faults/injector.hpp"
#include "metrics/collector.hpp"
#include "trace/soa.hpp"

namespace osim::dimemas {

using trace::CompiledStream;
using trace::kAnyRank;
using trace::kAnyTag;
using trace::LaneKind;
using trace::Rank;
using trace::ReqId;
using trace::Tag;

namespace {

/// DES events between cancellation polls. At the replay core's measured
/// rate (millions of events/s) this bounds detection latency well under a
/// millisecond of wall clock while keeping steady_clock reads off the per-
/// event path entirely.
constexpr std::uint64_t kCancelPollStride = 4096;

class Replayer {
 public:
  Replayer(const trace::Trace& trace, const Platform& platform,
           const ReplayOptions& options)
      : trace_(trace),
        platform_(platform),
        options_(options),
        network_(make_network(events_, platform)) {
    OSIM_CHECK_MSG(platform.num_nodes >= trace.num_ranks,
                   "platform has fewer nodes than the trace has ranks");
    procs_.resize(static_cast<std::size_t>(trace.num_ranks));
    inbox_.resize(static_cast<std::size_t>(trace.num_ranks));
    for (Rank r = 0; r < trace.num_ranks; ++r) {
      procs_[static_cast<std::size_t>(r)].rank = r;
    }
    if (options.collect_metrics) {
      collector_ = std::make_unique<metrics::ReplayCollector>(
          trace.num_ranks, platform.num_nodes);
      network_->set_collector(collector_.get());
    }
    if (options.faults.enabled()) {
      injector_ = std::make_unique<faults::FaultInjector>(options.faults);
      network_->set_fault_injector(injector_.get());
    }
  }

  SimResult run() {
    for (auto& proc : procs_) {
      // All ranks start at t=0 (the paper replays one process per node).
      events_.schedule(0.0, [this, &proc] { step(proc); });
    }
    // Cancellation polling is amortized: one check() per kCancelPollStride
    // DES events, plus one on the very first event so tiny traces are
    // still cancellable. With no armed token the per-event cost is a
    // single predictable branch on a cached bool — measured as noise by
    // the osim_perf gate.
    const bool poll_cancel =
        options_.cancel != nullptr && options_.cancel->armed();
    std::uint64_t next_poll = 1;
    while (events_.run_one()) {
      if (events_.now() > options_.max_sim_time_s) {
        throw Error(strprintf(
            "replay exceeded max_sim_time (%.6g s); likely runaway trace",
            options_.max_sim_time_s));
      }
      if (poll_cancel && events_.events_processed() >= next_poll) {
        next_poll = events_.events_processed() + kCancelPollStride;
        const StopCause cause = options_.cancel->check();
        if (cause != StopCause::kNone) {
          throw CancelledError(cause, partial_progress());
        }
      }
    }
    check_all_finished();

    SimResult result;
    result.rank_stats.reserve(procs_.size());
    for (auto& proc : procs_) {
      result.makespan = std::max(result.makespan, proc.stats.finish_time);
      result.rank_stats.push_back(proc.stats);
    }
    if (options_.record_timeline) {
      result.timelines.reserve(procs_.size());
      for (auto& proc : procs_) {
        result.timelines.push_back(std::move(proc.timeline));
      }
    }
    if (options_.record_comms) {
      result.comms.reserve(comms_.size());
      for (const CommEvent* comm : comms_) result.comms.push_back(*comm);
    }
    if (collector_ != nullptr) {
      result.metrics = std::make_shared<const metrics::ReplayMetrics>(
          collector_->finish(result.makespan));
    }
    if (injector_ != nullptr) result.fault_counts = injector_->counts();
    result.des_events = events_.events_processed();
    return result;
  }

 private:
  /// Snapshot of what the replay had simulated when a cancel fired. Blocked
  /// spans still open at the stop are counted up to the current simulated
  /// time, so a supervisor's partial wait attribution reflects ranks stuck
  /// mid-wait — exactly the ones a timeout usually implicates.
  PartialProgress partial_progress() const {
    PartialProgress partial;
    partial.sim_time_s = events_.now();
    partial.des_events = events_.events_processed();
    for (const auto& proc : procs_) {
      partial.compute_s += proc.stats.compute_s;
      partial.blocked_s += proc.stats.blocked_s();
      if (proc.blocked && events_.now() > proc.block_begin) {
        partial.blocked_s += events_.now() - proc.block_begin;
      }
      if (proc.finished) ++partial.ranks_finished;
    }
    return partial;
  }

  // --- bookkeeping types --------------------------------------------------
  //
  // SendSide / PostedRecv / CommEvent are arena-allocated: one bump-pointer
  // allocation per message, stable addresses, and everything is released
  // wholesale when the run ends (they are trivially destructible).

  struct PostedRecv;

  struct SendSide {
    Rank src = 0;
    Rank dst = 0;
    Tag tag = 0;
    std::uint64_t bytes = 0;
    bool immediate = false;
    ReqId request = trace::kNoRequest;
    bool eager = false;
    bool arrived = false;
    double call_time = 0.0;  // when the sender reached the send record
    /// Per-source message sequence number: the loss model's decision index,
    /// assigned in record order so it is independent of event scheduling.
    std::uint64_t fault_seq = 0;
    PostedRecv* partner = nullptr;
    CommEvent* comm = nullptr;  // arena-owned; null unless recording
    // Submit/start timestamps and queue reason for wait-time attribution;
    // only filled in when metrics collection is on.
    metrics::TransferTiming timing;
  };

  struct PostedRecv {
    Rank src = kAnyRank;
    Tag tag = kAnyTag;
    std::uint64_t bytes = 0;
    Rank dst = 0;
    bool immediate = false;
    ReqId request = trace::kNoRequest;
    double post_time = 0.0;  // when the receiver posted the recv
    SendSide* partner = nullptr;
    bool complete = false;
  };

  struct Proc {
    Rank rank = 0;
    std::size_t pc = 0;
    bool running = false;   // guards against re-entrant step()
    bool finished = false;
    // Block bookkeeping.
    bool blocked = false;
    RankState block_state = RankState::kCompute;
    double block_begin = 0.0;
    std::size_t outstanding = 0;  // incomplete requests a Wait waits on
    PostedRecv* blocking_recv = nullptr;
    // Cause of the current wait block: the *last* releasing completion
    // wins (latest completion time; on ties, a real remote cause beats
    // "released by pure network time"). Reset when a Wait blocks.
    Rank wait_cause_rank = -1;
    double wait_cause_time = 0.0;
    double wait_release_time = 0.0;
    const SendSide* wait_releaser = nullptr;
    bool wait_completed_any = false;
    std::unordered_map<ReqId, bool> request_complete;
    /// Requests the currently-blocked Wait still needs (small; linear scan
    /// beats hashing and is deterministic).
    std::vector<ReqId> waited;
    // Running per-rank decision indices for fault injection.
    std::uint64_t burst_seq = 0;
    std::uint64_t send_seq = 0;
    // MPI-activity window for the application-driven progress regime:
    // `computing` is true while a compute burst is in flight, i.e. the
    // rank is outside MPI until `compute_until` (its next enter-MPI
    // event). Maintained in every regime (two stores per burst), read
    // only under application-driven progress.
    bool computing = false;
    double compute_until = 0.0;
    /// Progress actions frozen by the current compute burst (app-driven
    /// regime only): handshake hops and completion observations, run in
    /// defer order at the rank's next MPI activity. Always empty in the
    /// other regimes.
    std::vector<InlineFunction<void()>> pending_mpi;
    bool drain_scheduled = false;
    RankStats stats;
    std::vector<StateInterval> timeline;
  };

  struct Inbox {
    std::deque<SendSide*> unmatched_sends;   // announce order
    std::deque<PostedRecv*> unmatched_recvs; // post order
  };

  // --- helpers --------------------------------------------------------------

  const CompiledStream& stream(const Proc& proc) const {
    return compiled_.ranks[static_cast<std::size_t>(proc.rank)];
  }

  double now() const { return events_.now(); }

  bool app_driven() const {
    return options_.progress.regime == ProgressRegime::kApplicationDriven;
  }

  // Runs `fn` now if `proc` can progress MPI work — it is blocked in an
  // MPI call, between records, or finished — and otherwise freezes it in
  // the rank's pending queue until its next MPI activity: the next
  // send/recv/wait record drains the queue on entry, and the end of the
  // compute burst drains whatever is left. Only the application-driven
  // regime ever defers; every other regime runs `fn` inline, which is
  // exactly the pre-axis event order.
  template <typename Fn>
  void run_in_mpi(Proc& proc, Fn fn) {
    if (!app_driven() || !proc.computing) {
      fn();
      return;
    }
    proc.pending_mpi.emplace_back(fn);
    if (!proc.drain_scheduled) {
      proc.drain_scheduled = true;
      events_.schedule(proc.compute_until,
                       [this, &proc] { drain_pending_event(proc); });
    }
  }

  /// Like run_in_mpi, but never before `time` (clamped to now()).
  template <typename Fn>
  void run_in_mpi_at(Proc& proc, double time, Fn fn) {
    if (time <= now()) {
      run_in_mpi(proc, fn);
      return;
    }
    events_.schedule(time, [this, &proc, fn] { run_in_mpi(proc, fn); });
  }

  /// Burst-end fallback for frozen progress actions: if the rank chained
  /// straight into another compute burst (no MPI record in between), keep
  /// waiting; otherwise the rank is at an MPI boundary — run them.
  void drain_pending_event(Proc& proc) {
    if (proc.computing) {
      events_.schedule(proc.compute_until,
                       [this, &proc] { drain_pending_event(proc); });
      return;
    }
    proc.drain_scheduled = false;
    drain_pending(proc);
  }

  /// Runs the frozen progress actions in defer order. Draining never
  /// re-appends: run_in_mpi only defers while the rank is computing, and
  /// every drain site has computing == false.
  void drain_pending(Proc& proc) {
    for (std::size_t i = 0; i < proc.pending_mpi.size(); ++i) {
      proc.pending_mpi[i]();
    }
    proc.pending_mpi.clear();
  }

  void add_interval(Proc& proc, double begin, double end, RankState state) {
    if (!options_.record_timeline || end <= begin) return;
    proc.timeline.push_back(StateInterval{begin, end, state});
  }

  void block(Proc& proc, RankState state) {
    OSIM_CHECK(!proc.blocked);
    proc.blocked = true;
    proc.block_state = state;
    proc.block_begin = now();
  }

  void unblock(Proc& proc, Rank cause_rank = -1, double cause_time = 0.0,
               const SendSide* releaser = nullptr) {
    OSIM_CHECK(proc.blocked);
    proc.blocked = false;
    const double blocked_for = now() - proc.block_begin;
    switch (proc.block_state) {
      case RankState::kSendBlocked:
        proc.stats.send_blocked_s += blocked_for;
        break;
      case RankState::kRecvBlocked:
        proc.stats.recv_blocked_s += blocked_for;
        break;
      case RankState::kWaitBlocked:
        proc.stats.wait_blocked_s += blocked_for;
        break;
      default:
        OSIM_UNREACHABLE("bad block state");
    }
    if (options_.record_timeline && now() > proc.block_begin) {
      proc.timeline.push_back(StateInterval{proc.block_begin, now(),
                                            proc.block_state, cause_rank,
                                            cause_time});
    }
    if (collector_ != nullptr && now() > proc.block_begin) {
      metrics::BlockKind kind = metrics::BlockKind::kWait;
      if (proc.block_state == RankState::kSendBlocked) {
        kind = metrics::BlockKind::kSend;
      } else if (proc.block_state == RankState::kRecvBlocked) {
        kind = metrics::BlockKind::kRecv;
      }
      Rank peer = -1;
      if (releaser != nullptr) {
        peer = releaser->src == proc.rank ? releaser->dst : releaser->src;
      }
      collector_->attribute(proc.rank, peer, kind, proc.block_begin, now(),
                            releaser != nullptr ? &releaser->timing : nullptr);
    }
    if (!proc.running) {
      // Resume the interpretation loop in a fresh event so the current
      // callback stack unwinds first.
      events_.schedule(now(), [this, &proc] { step(proc); });
    }
  }

  // Tracks which completion releases a blocked Wait. The last one (latest
  // completion time) wins; at equal times a real remote cause beats
  // cause_rank == -1, and among real causes the latest remote constraint
  // wins. Without the tie-break, FIFO event order could surface a
  // simultaneous completion with no cause and hide the true releaser.
  void record_wait_release(Proc& proc, Rank cause_rank, double cause_time,
                           const SendSide* releaser) {
    const double t = now();
    bool adopt = false;
    if (!proc.wait_completed_any || t > proc.wait_release_time) {
      adopt = true;
    } else if (t == proc.wait_release_time) {
      if (proc.wait_cause_rank == -1) {
        adopt = cause_rank != -1;
      } else if (cause_rank != -1) {
        adopt = cause_time > proc.wait_cause_time;
      }
    }
    if (adopt) {
      proc.wait_cause_rank = cause_rank;
      proc.wait_cause_time = cause_time;
      proc.wait_releaser = releaser;
    }
    proc.wait_completed_any = true;
    proc.wait_release_time = std::max(proc.wait_release_time, t);
  }

  void complete_request(Proc& proc, ReqId request, Rank cause_rank = -1,
                        double cause_time = 0.0,
                        const SendSide* releaser = nullptr) {
    auto it = proc.request_complete.find(request);
    OSIM_CHECK_MSG(it != proc.request_complete.end(),
                   "request completion for unknown request");
    OSIM_CHECK(!it->second);
    it->second = true;
    if (proc.blocked && proc.block_state == RankState::kWaitBlocked) {
      OSIM_CHECK(proc.outstanding > 0);
      // Only decrement if this request is among the waited set — the wait
      // installed `outstanding` as the count of incomplete waited requests
      // and listed them in proc.waited.
      const auto waited =
          std::find(proc.waited.begin(), proc.waited.end(), request);
      if (waited != proc.waited.end()) {
        *waited = proc.waited.back();
        proc.waited.pop_back();
        record_wait_release(proc, cause_rank, cause_time, releaser);
        if (--proc.outstanding == 0) {
          unblock(proc, proc.wait_cause_rank, proc.wait_cause_time,
                  proc.wait_releaser);
        }
      }
    }
  }

  // --- record interpretation -------------------------------------------

  void step(Proc& proc) {
    if (proc.finished || proc.blocked) return;
    proc.running = true;
    const CompiledStream& recs = stream(proc);
    const std::size_t n = recs.records();
    while (!proc.blocked && proc.pc < n) {
      const std::size_t i = proc.pc++;
      const std::uint32_t slot = recs.slot[i];
      switch (recs.kind[i]) {
        case LaneKind::kCpu:
          do_compute(proc, recs.burst_instructions[slot]);
          proc.running = false;
          return;  // resumes via the scheduled wake-up
        case LaneKind::kSend:
          do_send(proc, recs, slot);
          break;
        case LaneKind::kRecv:
          do_recv(proc, recs, slot);
          break;
        case LaneKind::kWait:
          do_wait(proc, recs, slot);
          break;
      }
    }
    proc.running = false;
    if (!proc.blocked && proc.pc >= n) {
      proc.finished = true;
      proc.stats.finish_time = now();
    }
  }

  void do_compute(Proc& proc, std::uint64_t instructions) {
    double duration =
        static_cast<double>(instructions) /
        (trace_.mips * 1.0e6 * platform_.node_cpu_speed(proc.rank));
    if (injector_ != nullptr) {
      duration = injector_->perturb_compute(proc.rank, proc.burst_seq++,
                                            now(), duration);
    }
    if (options_.progress.regime == ProgressRegime::kProgressThread) {
      // The progress thread steals cycles: the burst stretches by the
      // configured CPU tax (and communication keeps advancing, as under
      // offload).
      duration *= 1.0 + options_.progress.thread_cpu_tax;
    }
    proc.stats.compute_s += duration;
    add_interval(proc, now(), now() + duration, RankState::kCompute);
    proc.computing = true;
    proc.compute_until = now() + duration;
    events_.schedule(now() + duration, [this, &proc] {
      proc.computing = false;
      step(proc);
    });
  }

  void do_send(Proc& proc, const CompiledStream& recs, std::uint32_t slot) {
    // Entering an MPI call progresses the engine (app-driven regime):
    // frozen handshakes and completions run before the call's own work.
    if (!proc.pending_mpi.empty()) drain_pending(proc);
    SendSide* send = arena_.make<SendSide>();
    send->src = proc.rank;
    send->dst = recs.send_dest[slot];
    send->tag = recs.send_tag[slot];
    send->bytes = recs.send_bytes[slot];
    const bool immediate = recs.send_immediate[slot] != 0;
    send->immediate = immediate;
    send->request = recs.send_request[slot];
    send->eager = recs.send_synchronous[slot] == 0 &&
                  send->bytes <= platform_.eager_threshold_bytes;
    send->call_time = now();
    send->fault_seq = proc.send_seq++;
    if (options_.record_comms) {
      send->comm = arena_.make<CommEvent>();
      comms_.push_back(send->comm);
      send->comm->src = send->src;
      send->comm->dst = send->dst;
      send->comm->tag = send->tag;
      send->comm->bytes = send->bytes;
      send->comm->send_call_time = now();
    }
    proc.stats.messages_sent++;
    proc.stats.bytes_sent += send->bytes;
    if (collector_ != nullptr) {
      collector_->count_message(send->eager, send->bytes);
    }

    if (immediate) {
      const bool inserted =
          proc.request_complete.emplace(send->request, false).second;
      OSIM_CHECK_MSG(inserted, "duplicate request id in trace");
    }

    match_send(send);

    if (send->eager) {
      // Eager: the message leaves immediately; local completion is instant.
      submit_transfer(send);
      if (immediate) complete_request(proc, send->request);
      return;  // blocking eager send does not block
    }
    // Rendezvous: transfer starts when the partner recv is posted.
    if (send->partner != nullptr) start_rendezvous(send);
    if (!immediate) {
      block(proc, RankState::kSendBlocked);  // until arrival
    }
    // Immediate rendezvous send: request completes at arrival.
  }

  void do_recv(Proc& proc, const CompiledStream& recs, std::uint32_t slot) {
    if (!proc.pending_mpi.empty()) drain_pending(proc);
    PostedRecv* recv = arena_.make<PostedRecv>();
    recv->src = recs.recv_src[slot];
    recv->tag = recs.recv_tag[slot];
    recv->bytes = recs.recv_bytes[slot];
    recv->dst = proc.rank;
    const bool immediate = recs.recv_immediate[slot] != 0;
    recv->immediate = immediate;
    recv->request = recs.recv_request[slot];
    recv->post_time = now();
    proc.stats.messages_received++;

    if (immediate) {
      const bool inserted =
          proc.request_complete.emplace(recv->request, false).second;
      OSIM_CHECK_MSG(inserted, "duplicate request id in trace");
    }

    match_recv(recv);
    if (recv->partner != nullptr) {
      if (recv->partner->comm != nullptr) {
        recv->partner->comm->recv_post_time = now();
      }
      if (recv->partner->arrived) {
        // Message already fully here: the recv completes instantly.
        finish_recv(*recv);
        return;
      }
      if (!recv->partner->eager) start_rendezvous(recv->partner);
    }
    if (!immediate && !recv->complete) {
      proc.blocking_recv = recv;
      block(proc, RankState::kRecvBlocked);
    }
  }

  void do_wait(Proc& proc, const CompiledStream& recs, std::uint32_t slot) {
    if (!proc.pending_mpi.empty()) drain_pending(proc);
    std::size_t incomplete = 0;
    proc.waited.clear();
    const std::uint32_t begin = recs.wait_begin[slot];
    const std::uint32_t end = recs.wait_begin[slot + 1];
    for (std::uint32_t k = begin; k < end; ++k) {
      const ReqId req = recs.wait_requests[k];
      auto it = proc.request_complete.find(req);
      OSIM_CHECK_MSG(it != proc.request_complete.end(),
                     "wait on unknown request (trace not validated?)");
      if (!it->second) {
        proc.waited.push_back(req);
        ++incomplete;
      }
      // Completed requests are consumed by the wait.
    }
    if (incomplete == 0) return;
    proc.outstanding = incomplete;
    proc.wait_cause_rank = -1;
    proc.wait_cause_time = 0.0;
    proc.wait_release_time = 0.0;
    proc.wait_releaser = nullptr;
    proc.wait_completed_any = false;
    block(proc, RankState::kWaitBlocked);
  }

  // --- matching ---------------------------------------------------------

  static bool matches(const PostedRecv& recv, const SendSide& send) {
    return envelope_matches(
        RecvEnvelope{recv.src, recv.dst, recv.tag, recv.bytes},
        SendEnvelope{send.src, send.dst, send.tag, send.bytes});
  }

  void match_send(SendSide* send) {
    Inbox& inbox = inbox_[static_cast<std::size_t>(send->dst)];
    for (auto it = inbox.unmatched_recvs.begin();
         it != inbox.unmatched_recvs.end(); ++it) {
      if (matches(**it, *send)) {
        PostedRecv* recv = *it;
        inbox.unmatched_recvs.erase(it);
        send->partner = recv;
        recv->partner = send;
        if (send->comm != nullptr) {
          // recv was posted before this send.
          send->comm->recv_post_time = recv->post_time;
        }
        return;
      }
    }
    inbox.unmatched_sends.push_back(send);
  }

  void match_recv(PostedRecv* recv) {
    Inbox& inbox = inbox_[static_cast<std::size_t>(recv->dst)];
    for (auto it = inbox.unmatched_sends.begin();
         it != inbox.unmatched_sends.end(); ++it) {
      if (matches(*recv, **it)) {
        SendSide* send = *it;
        inbox.unmatched_sends.erase(it);
        recv->partner = send;
        send->partner = recv;
        return;
      }
    }
    inbox.unmatched_recvs.push_back(recv);
  }

  // --- transfers ----------------------------------------------------------

  // Starts the data transfer of a matched rendezvous pair. Under offload
  // and progress-thread regimes the handshake is free — hardware (or the
  // progress thread) advances it while the hosts compute, so the transfer
  // enters the network the instant both sides are known, exactly the
  // historical behavior. Under application-driven progress the handshake
  // itself needs host attention: the RTS (issued at the send call)
  // reaches the receiver after one fixed-latency hop but is only noticed
  // inside one of the receiver's MPI calls; the CTS answer likewise costs
  // a hop and is only noticed inside one of the sender's MPI calls. Only
  // then does the payload enter the network. The extra time relative to
  // the ungated model is recorded as timing.progress_delay_s so the
  // wait-attribution collectors can bill it to the progress_s cause.
  void start_rendezvous(SendSide* send) {
    if (!app_driven()) {
      submit_transfer(send);
      return;
    }
    const double trigger = now();
    const double hop = network_->fixed_latency_s();
    Proc& receiver = procs_[static_cast<std::size_t>(send->dst)];
    run_in_mpi_at(receiver, send->call_time + hop, [this, send, trigger] {
      Proc& sender = procs_[static_cast<std::size_t>(send->src)];
      run_in_mpi_at(sender, now() + network_->fixed_latency_s(),
                    [this, send, trigger] {
                      if (collector_ != nullptr) {
                        send->timing.progress_delay_s = now() - trigger;
                      }
                      submit_transfer(send);
                    });
    });
  }

  void submit_transfer(SendSide* send) {
    // The loss model's injected delay (retransmission backoff) postpones
    // the message's entry into the network; dropped attempts never occupy
    // the wire. Sampled here — the submission point — for both eager
    // payloads and rendezvous handshakes.
    double fault_delay = 0.0;
    if (injector_ != nullptr) {
      fault_delay =
          injector_->loss_delay_s(send->src, send->fault_seq, send->eager);
    }
    if (collector_ != nullptr) {
      send->timing.submit_s = now();
      send->timing.fault_delay_s = fault_delay;
    }
    if (fault_delay > 0.0) {
      events_.schedule(now() + fault_delay,
                       [this, send] { enter_network(send); });
      return;
    }
    enter_network(send);
  }

  void enter_network(SendSide* send) {
    Transfer transfer{send->src, send->dst, send->bytes};
    CommEvent* comm = send->comm;
    StartFn on_start;
    if (collector_ != nullptr) {
      send->timing.fixed_latency_s = network_->fixed_latency_s();
      on_start = [send](double time) {
        send->timing.start_s = time;
        if (send->comm != nullptr) send->comm->transfer_start = time;
      };
    } else if (comm != nullptr) {
      on_start = [comm](double time) { comm->transfer_start = time; };
    }
    network_->submit(transfer,
                     [this, send](double time) { on_arrival(send, time); },
                     std::move(on_start));
    if (collector_ != nullptr && send->timing.start_s < 0.0) {
      // Still queued after submit: sample what blocked admission. This is
      // accurate because the network starts every pending transfer that
      // fits before submit() returns, so an unstarted transfer has a
      // concrete blocking resource right now.
      send->timing.queue_reason = network_->admission_block(transfer);
    }
  }

  void on_arrival(SendSide* send, double time) {
    send->arrived = true;
    if (send->comm != nullptr) send->comm->arrival_time = time;
    if (collector_ != nullptr) send->timing.arrival_s = time;
    Proc& sender = procs_[static_cast<std::size_t>(send->src)];
    if (!send->eager) {
      // Rendezvous completion on the sender side. Under application-driven
      // progress a computing sender only observes it at its next enter-MPI
      // event; run_in_mpi is inline in every other regime.
      run_in_mpi(sender, [this, send] { complete_send_side(send); });
    }
    if (send->partner != nullptr) {
      // Delivery to the receiver, gated the same way. The pair
      // (send, partner) is final here: matching happened before the
      // transfer could start, so a deferred delivery cannot race with the
      // do_recv inline-completion path (that path only runs when the
      // message had already arrived unmatched, i.e. partner was null now).
      Proc& receiver = procs_[static_cast<std::size_t>(send->partner->dst)];
      run_in_mpi(receiver, [this, send] { finish_recv(*send->partner); });
    }
  }

  void complete_send_side(SendSide* send) {
    Proc& sender = procs_[static_cast<std::size_t>(send->src)];
    // The causal constraint is the receive post when it gated the
    // transfer start.
    Rank cause_rank = -1;
    double cause_time = 0.0;
    if (send->partner != nullptr &&
        send->partner->post_time > send->call_time) {
      cause_rank = send->dst;
      cause_time = send->partner->post_time;
    }
    if (send->immediate) {
      complete_request(sender, send->request, cause_rank, cause_time, send);
    } else {
      unblock(sender, cause_rank, cause_time, send);
    }
  }

  void finish_recv(PostedRecv& recv) {
    OSIM_CHECK(!recv.complete);
    OSIM_CHECK(recv.partner != nullptr && recv.partner->arrived);
    recv.complete = true;
    if (recv.partner->comm != nullptr) {
      recv.partner->comm->recv_complete_time = now();
    }
    Proc& receiver = procs_[static_cast<std::size_t>(recv.dst)];
    // Delivery accounting: the global sums of bytes_sent and
    // bytes_received match once every message has been delivered.
    receiver.stats.bytes_received += recv.partner->bytes;
    // The causal constraint is the sender's send call when it happened
    // after this receive was posted (the receiver truly waited on it).
    Rank cause_rank = -1;
    double cause_time = 0.0;
    if (recv.partner->call_time > recv.post_time) {
      cause_rank = recv.partner->src;
      cause_time = recv.partner->call_time;
    }
    if (recv.immediate) {
      complete_request(receiver, recv.request, cause_rank, cause_time,
                       recv.partner);
      return;
    }
    if (receiver.blocking_recv == &recv) {
      receiver.blocking_recv = nullptr;
      if (receiver.blocked &&
          receiver.block_state == RankState::kRecvBlocked) {
        unblock(receiver, cause_rank, cause_time, recv.partner);
      }
      // If the receiver never blocked (message was already here when the
      // recv posted), step() simply continues inline.
    }
  }

  void check_all_finished() const {
    std::vector<std::string> stuck;
    for (const auto& proc : procs_) {
      if (proc.finished) continue;
      // Diagnostics read the canonical variant stream (same record order
      // as the compiled one).
      const auto& recs =
          replayed_->ranks[static_cast<std::size_t>(proc.rank)];
      const std::size_t at = proc.pc == 0 ? 0 : proc.pc - 1;
      stuck.push_back(strprintf(
          "rank %d %s at record %zu/%zu: %s", proc.rank,
          proc.blocked ? rank_state_name(proc.block_state) : "stalled", at,
          recs.size(),
          at < recs.size() ? trace::to_string(recs[at]).c_str() : "<end>"));
    }
    if (!stuck.empty()) {
      throw Error("replay deadlock:\n  " + join(stuck, "\n  "));
    }
  }

 public:
  void prepare() {
    if (!platform_.per_node_cpu_speed.empty()) {
      OSIM_CHECK_MSG(platform_.per_node_cpu_speed.size() ==
                         static_cast<std::size_t>(platform_.num_nodes),
                     "per_node_cpu_speed must have num_nodes entries");
      for (const double speed : platform_.per_node_cpu_speed) {
        OSIM_CHECK_MSG(speed > 0.0, "per-node CPU speed must be positive");
      }
    }
    if (options_.validate_input) trace::validate(trace_);
    if (options_.auto_expand_collectives && has_collectives(trace_)) {
      expanded_ = expand_collectives(trace_, options_.collective_algo);
      replayed_ = &expanded_;
    } else {
      replayed_ = &trace_;
    }
    // Lower the record streams to struct-of-arrays once; the interpreter
    // then streams dense lanes instead of walking 48-byte variants.
    // compile() rejects surviving GlobalOps.
    compiled_ = trace::compile(*replayed_);
  }

 private:
  const trace::Trace& trace_;
  trace::Trace expanded_;
  const trace::Trace* replayed_ = nullptr;
  trace::CompiledTrace compiled_;
  const Platform& platform_;
  const ReplayOptions& options_;
  EventQueue events_;
  std::unique_ptr<Network> network_;
  std::vector<Proc> procs_;
  std::vector<Inbox> inbox_;
  Arena arena_;  // SendSide / PostedRecv / CommEvent storage
  std::vector<CommEvent*> comms_;
  std::unique_ptr<metrics::ReplayCollector> collector_;  // null unless on
  std::unique_ptr<faults::FaultInjector> injector_;      // null unless on
};

}  // namespace

SimResult replay(const trace::Trace& trace, const Platform& platform,
                 const ReplayOptions& options) {
  Replayer replayer(trace, platform, options);
  replayer.prepare();
  return replayer.run();
}

}  // namespace osim::dimemas
