// Replay outputs: per-rank activity timelines (for Paraver / ASCII
// rendering), communication events (for synchronization lines), and summary
// statistics per rank.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "faults/model.hpp"
#include "metrics/replay_metrics.hpp"
#include "trace/record.hpp"

namespace osim::dimemas {

/// What a rank is doing during a timeline interval. Mirrors the Paraver
/// state semantics used in the paper's Figure 4 (Running vs Wait).
enum class RankState : std::uint8_t {
  kCompute,      // executing a CPU burst
  kSendBlocked,  // inside a blocking send (rendezvous in flight)
  kRecvBlocked,  // inside a blocking recv
  kWaitBlocked,  // inside a wait on immediate requests
  kCollective,   // inside an expanded collective region
};

const char* rank_state_name(RankState state);

struct StateInterval {
  double begin = 0.0;
  double end = 0.0;
  RankState state = RankState::kCompute;
  /// For blocked intervals: the rank whose activity released this block
  /// (the message sender for receive/wait blocks, the receive poster for
  /// rendezvous send blocks) and the time on that rank from which the
  /// causal chain continues (its send call / receive post). -1 when the
  /// block was resolved by pure network time with no remote constraint.
  trace::Rank cause_rank = -1;
  double cause_time = 0.0;
};

struct CommEvent {
  trace::Rank src = 0;
  trace::Rank dst = 0;
  trace::Tag tag = 0;
  std::uint64_t bytes = 0;
  double send_call_time = 0.0;   // sender reached the send record
  double transfer_start = 0.0;   // resources acquired, wire time begins
  double arrival_time = 0.0;     // message fully received
  double recv_post_time = 0.0;   // receiver posted the matching recv
  double recv_complete_time = 0.0;  // receiver's recv/wait satisfied
};

struct RankStats {
  double compute_s = 0.0;
  double send_blocked_s = 0.0;
  double recv_blocked_s = 0.0;
  double wait_blocked_s = 0.0;
  double finish_time = 0.0;
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t bytes_sent = 0;
  /// Accumulated at delivery, so at the end of a replay the global sums of
  /// bytes_sent and bytes_received are equal (message conservation).
  std::uint64_t bytes_received = 0;

  double blocked_s() const {
    return send_blocked_s + recv_blocked_s + wait_blocked_s;
  }

  friend bool operator==(const RankStats&, const RankStats&) = default;
};

struct SimResult {
  double makespan = 0.0;  // max finish time over ranks
  std::vector<RankStats> rank_stats;
  /// Per-rank state intervals; only populated when
  /// ReplayOptions::record_timeline is set.
  std::vector<std::vector<StateInterval>> timelines;
  /// All point-to-point transfers; only populated when
  /// ReplayOptions::record_comms is set.
  std::vector<CommEvent> comms;
  /// Wait-time attribution, occupancy and protocol metrics; only populated
  /// when ReplayOptions::collect_metrics is set. Shared so SimResult stays
  /// cheap to copy.
  std::shared_ptr<const metrics::ReplayMetrics> metrics;
  /// Fault-injection activity (ReplayOptions::faults). Always present and
  /// independent of collect_metrics; enabled == false for fault-free runs.
  faults::Counts fault_counts;
  std::uint64_t des_events = 0;  // DES events processed (perf diagnostics)

  double total_compute_s() const;
  double total_blocked_s() const;
  /// Parallel efficiency: total compute / (ranks * makespan).
  double efficiency() const;
};

}  // namespace osim::dimemas
