// Discrete-event simulation core: a time-ordered event queue with
// deterministic FIFO tie-breaking for simultaneous events.
//
// The queue is a calendar queue (Brown 1988) tuned for the near-monotone
// timestamp distribution replay produces: most events are scheduled a
// short, similar distance into the future (compute bursts, transfer
// completions), so they land in the current or a nearby bucket and both
// schedule() and pop are O(1) amortized — versus O(log n) heap churn for
// std::priority_queue. Ordering is exact, not approximate: each "year"
// (global bucket number, floor(time / width)) maps to one bucket, years
// are drained in increasing order, and within a year the earliest
// (time, seq) entry wins, so the pop sequence is identical to the heap's
// and replay results stay bit-for-bit deterministic.
//
// Handlers are InlineFunction (48-byte inline buffer), so scheduling an
// event never heap-allocates for the closures the replay engine builds.
#pragma once

#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "common/expect.hpp"
#include "common/inline_function.hpp"

namespace osim::dimemas {

class EventQueue {
 public:
  using Handler = InlineFunction<void(), 48>;

  EventQueue() { buckets_.resize(kMinBuckets); }

  /// Schedules `fn` at absolute simulated time `time` (>= now()).
  void schedule(double time, Handler fn) {
    OSIM_CHECK_MSG(time >= now_, "event scheduled in the past");
    const std::uint64_t year = year_of(time);
    buckets_[bucket_of(year)].push_back(Entry{time, year, next_seq_++,
                                              std::move(fn)});
    ++size_;
    if (size_ > buckets_.size() * 2 && buckets_.size() < kMaxBuckets) {
      rebuild(buckets_.size() * 2);
    }
  }

  /// Schedules `fn` after a relative delay (>= 0).
  void schedule_after(double delay, Handler fn) {
    schedule(now_ + delay, std::move(fn));
  }

  double now() const { return now_; }
  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  std::uint64_t events_processed() const { return processed_; }

  /// Pops and runs the earliest event. Returns false when the queue is
  /// empty. The entry is moved out of its bucket before the handler runs —
  /// no copy-then-pop workaround (the old std::priority_queue only exposed
  /// a const top()).
  bool run_one() {
    if (size_ == 0) return false;
    Entry entry = pop();
    OSIM_CHECK(entry.time >= now_);
    now_ = entry.time;
    ++processed_;
    entry.fn();
    return true;
  }

  void run_until_empty() {
    while (run_one()) {
    }
  }

 private:
  struct Entry {
    double time;
    std::uint64_t year;  // floor(time / width_) at insertion width
    std::uint64_t seq;
    Handler fn;
  };

  static constexpr std::size_t kMinBuckets = 64;       // power of two
  static constexpr std::size_t kMaxBuckets = 1 << 20;  // power of two

  static bool earlier(const Entry& a, const Entry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;  // FIFO among simultaneous events
  }

  std::uint64_t year_of(double time) const {
    double q = time / width_;
    // Clamp runaway clocks instead of invoking UB on the cast; entries
    // sharing the clamped year still pop in exact (time, seq) order.
    if (q > 9.0e18) q = 9.0e18;
    return static_cast<std::uint64_t>(q);
  }

  std::size_t bucket_of(std::uint64_t year) const {
    return static_cast<std::size_t>(year & (buckets_.size() - 1));
  }

  /// Extracts the earliest (time, seq) entry. Years are visited in
  /// increasing order; a year's entries all live in one bucket (tagged with
  /// their year so entries a whole cycle ahead are skipped). If a full
  /// cycle of buckets turns up nothing — the next event is far in the
  /// future — one direct O(n) scan finds the earliest year and jumps there.
  Entry pop() {
    for (std::size_t walked = 0;; ++walked) {
      std::vector<Entry>& bucket = buckets_[bucket_of(current_year_)];
      std::size_t best = bucket.size();
      for (std::size_t i = 0; i < bucket.size(); ++i) {
        if (bucket[i].year != current_year_) continue;
        if (best == bucket.size() || earlier(bucket[i], bucket[best])) {
          best = i;
        }
      }
      if (best != bucket.size()) {
        Entry out = std::move(bucket[best]);
        bucket[best] = std::move(bucket.back());
        bucket.pop_back();
        --size_;
        if (size_ * 8 < buckets_.size() && buckets_.size() > kMinBuckets) {
          rebuild(buckets_.size() / 2);
        }
        return out;
      }
      if (walked >= buckets_.size()) {
        current_year_ = earliest_year();
        walked = 0;
      } else {
        ++current_year_;
      }
    }
  }

  std::uint64_t earliest_year() const {
    std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
    for (const std::vector<Entry>& bucket : buckets_) {
      for (const Entry& entry : bucket) {
        if (entry.year < best) best = entry.year;
      }
    }
    return best;
  }

  /// Re-buckets every entry into `nbuckets` buckets, resampling the bucket
  /// width so entries spread ~2 per bucket across their time span. Pop
  /// order is unaffected: ordering is by (time, seq), never by layout.
  void rebuild(std::size_t nbuckets) {
    std::vector<Entry> all;
    all.reserve(size_);
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    for (std::vector<Entry>& bucket : buckets_) {
      for (Entry& entry : bucket) {
        if (entry.time < lo) lo = entry.time;
        if (entry.time > hi) hi = entry.time;
        all.push_back(std::move(entry));
      }
      bucket.clear();
    }
    if (hi > lo && !all.empty()) {
      width_ = (hi - lo) / static_cast<double>(all.size()) * 2.0;
      if (width_ < 1e-308) width_ = 1e-308;  // denormal guard
    } else if (!all.empty()) {
      // Degenerate span (every pending entry at one timestamp): resample
      // back to the construction default instead of keeping whatever width
      // the previous rebuild landed on. A stale near-denormal width here
      // would map nearby future times to astronomically distant years and
      // turn every subsequent pop into a full bucket walk.
      width_ = 1e-5;
    }
    buckets_.clear();
    buckets_.resize(nbuckets);
    // Restart the year cursor at the clock, never at the earliest entry:
    // a cursor ahead of year_of(now_) would pop entries scheduled later
    // (by a handler, between now and the earliest pre-rebuild entry) out
    // of order. Starting at the clock only costs a forward walk.
    current_year_ = year_of(now_);
    for (Entry& entry : all) {
      entry.year = year_of(entry.time);
      buckets_[bucket_of(entry.year)].push_back(std::move(entry));
    }
  }

  std::vector<std::vector<Entry>> buckets_;
  double width_ = 1e-5;  // resampled at every rebuild
  std::uint64_t current_year_ = 0;
  std::size_t size_ = 0;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace osim::dimemas
