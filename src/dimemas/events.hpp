// Discrete-event simulation core: a time-ordered event queue with
// deterministic FIFO tie-breaking for simultaneous events.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/expect.hpp"

namespace osim::dimemas {

class EventQueue {
 public:
  using Handler = std::function<void()>;

  /// Schedules `fn` at absolute simulated time `time` (>= now()).
  void schedule(double time, Handler fn) {
    OSIM_CHECK_MSG(time >= now_, "event scheduled in the past");
    heap_.push(Entry{time, next_seq_++, std::move(fn)});
  }

  /// Schedules `fn` after a relative delay (>= 0).
  void schedule_after(double delay, Handler fn) {
    schedule(now_ + delay, std::move(fn));
  }

  double now() const { return now_; }
  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }
  std::uint64_t events_processed() const { return processed_; }

  /// Pops and runs the earliest event. Returns false when the queue is empty.
  bool run_one() {
    if (heap_.empty()) return false;
    // Entry's handler is moved out before pop; const_cast is confined here
    // because std::priority_queue only exposes const top().
    Entry& top = const_cast<Entry&>(heap_.top());
    OSIM_CHECK(top.time >= now_);
    now_ = top.time;
    Handler fn = std::move(top.fn);
    heap_.pop();
    ++processed_;
    fn();
    return true;
  }

  void run_until_empty() {
    while (run_one()) {
    }
  }

 private:
  struct Entry {
    double time;
    std::uint64_t seq;
    Handler fn;
    bool operator>(const Entry& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;  // FIFO among simultaneous events
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace osim::dimemas
