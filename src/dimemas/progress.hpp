// The MPI progress engine as a deterministic scenario axis.
//
// The paper's replay model assumes communication advances while the CPU
// computes — i.e. perfect hardware offload. "MPI Progress For All" shows
// that assumption decides whether overlap mechanisms pay off at all, so
// the regime is modeled explicitly:
//
//   offload      transfers and rendezvous handshakes advance continuously,
//                independent of what the host CPU is doing. This is the
//                historical behavior and the bit-identical default.
//   app          application-driven progress: rendezvous handshakes and
//                transfer-completion observation only advance while the
//                owning rank is inside an MPI call (posted, blocked, or
//                between trace records). A compute burst freezes them
//                until the rank's next enter-MPI event.
//   thread       a dedicated progress thread: communication advances
//                continuously as under offload, but the thread steals
//                cycles — every compute burst is stretched by a
//                configurable CPU tax.
//
// Like faults::FaultModel, the model is inert when disabled: a
// default-constructed ProgressModel must leave replay results, reports and
// fingerprints byte-identical to a build without this header.
#pragma once

#include <cstdint>
#include <string>

namespace osim::dimemas {

enum class ProgressRegime : std::uint8_t {
  kOffload = 0,
  kApplicationDriven = 1,
  kProgressThread = 2,
};

const char* progress_regime_name(ProgressRegime regime);

struct ProgressModel {
  ProgressRegime regime = ProgressRegime::kOffload;
  /// Fraction of every compute burst consumed by the progress thread
  /// (kProgressThread only): a burst of duration d costs d * (1 + tax).
  double thread_cpu_tax = 0.05;

  /// True when the regime differs from the offload default. A disabled
  /// model is never hashed into fingerprints and perturbs nothing.
  bool enabled() const { return regime != ProgressRegime::kOffload; }

  friend bool operator==(const ProgressModel& a, const ProgressModel& b) {
    return a.regime == b.regime && a.thread_cpu_tax == b.thread_cpu_tax;
  }
  friend bool operator!=(const ProgressModel& a, const ProgressModel& b) {
    return !(a == b);
  }
};

/// Parses a progress spec. Grammar (same flavor as faults::parse_spec):
///
///   "" | "offload"        the inert default
///   "app"                 application-driven progress
///   "thread[,tax=F]"      progress thread with CPU tax F (default 0.05)
///
/// Throws Error with the offending clause on malformed input.
ProgressModel parse_progress_spec(const std::string& spec);

/// Canonical spec: "" for a disabled model, otherwise a string that
/// parse_progress_spec maps back to an equal model (fixed point). This is
/// the exact byte sequence hashed into pipeline fingerprints.
std::string to_spec(const ProgressModel& model);

}  // namespace osim::dimemas
