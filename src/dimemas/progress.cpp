#include "dimemas/progress.hpp"

#include <string_view>

#include "common/expect.hpp"
#include "common/strings.hpp"

namespace osim::dimemas {

namespace {

[[noreturn]] void bad(const std::string& spec, const std::string& why) {
  throw Error("progress spec '" + spec + "': " + why);
}

}  // namespace

const char* progress_regime_name(ProgressRegime regime) {
  switch (regime) {
    case ProgressRegime::kOffload:
      return "offload";
    case ProgressRegime::kApplicationDriven:
      return "app";
    case ProgressRegime::kProgressThread:
      return "thread";
  }
  OSIM_UNREACHABLE("bad ProgressRegime");
}

ProgressModel parse_progress_spec(const std::string& spec) {
  ProgressModel model;
  const std::vector<std::string> fields = split(spec, ',');
  const std::string head(trim(fields.empty() ? std::string() : fields[0]));
  if (head.empty() || head == "offload") {
    model.regime = ProgressRegime::kOffload;
  } else if (head == "app") {
    model.regime = ProgressRegime::kApplicationDriven;
  } else if (head == "thread") {
    model.regime = ProgressRegime::kProgressThread;
  } else {
    bad(spec, "unknown regime '" + head +
                  "' (expected offload, app or thread)");
  }
  for (std::size_t i = 1; i < fields.size(); ++i) {
    const std::string item(trim(fields[i]));
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0) {
      bad(spec, "expected key=value, got '" + item + "'");
    }
    const std::string key = item.substr(0, eq);
    const std::string_view value = std::string_view(item).substr(eq + 1);
    if (key == "tax") {
      if (model.regime != ProgressRegime::kProgressThread) {
        bad(spec, "tax only applies to the thread regime");
      }
      const auto parsed = parse_f64(value);
      if (!parsed || !(*parsed >= 0.0) || !(*parsed <= 10.0)) {
        bad(spec, "tax must be a number in [0, 10], got '" +
                      std::string(value) + "'");
      }
      model.thread_cpu_tax = *parsed;
    } else {
      bad(spec, "unknown key '" + key + "'");
    }
  }
  return model;
}

std::string to_spec(const ProgressModel& model) {
  switch (model.regime) {
    case ProgressRegime::kOffload:
      return "";
    case ProgressRegime::kApplicationDriven:
      return "app";
    case ProgressRegime::kProgressThread:
      // %.17g round-trips every double, so parse(to_spec(m)) == m.
      return strprintf("thread,tax=%.17g", model.thread_cpu_tax);
  }
  OSIM_UNREACHABLE("bad ProgressRegime");
}

}  // namespace osim::dimemas
