// The trace-driven replay simulator (the Dimemas role in the paper's
// pipeline): "Dimemas uses the traces obtained from each MPI process and
// off-line reconstructs the application's time-behavior on a configurable
// parallel platform."
//
// Semantics
// ---------
// Each rank is a logical process replaying its record stream:
//
//   CpuBurst  — advances the rank's clock by
//               instructions / (trace MIPS * relative_cpu_speed).
//   Send      — eager (bytes <= eager_threshold): the transfer enters the
//               network at the call; a blocking send returns immediately
//               (buffered) and an isend request completes immediately.
//               rendezvous: the transfer enters the network when the
//               matching receive is posted; a blocking send blocks until
//               arrival, an isend request completes at arrival.
//   Recv      — blocking: blocks until the matching message has fully
//               arrived. Irecv posts the receive; the request completes at
//               arrival.
//   Wait      — blocks until every listed request has completed.
//   GlobalOp  — expanded to point-to-point via expand_collectives()
//               (done automatically unless disabled).
//
// Matching follows MPI ordering: receives match announced sends in post
// order, sends match posted receives in announce order, with ANY_SOURCE /
// ANY_TAG wildcards honoured. Transfer time and contention come from the
// Network model (bus or fair-share).
#pragma once

#include <limits>

#include "common/cancel.hpp"
#include "dimemas/collectives.hpp"
#include "dimemas/platform.hpp"
#include "dimemas/progress.hpp"
#include "dimemas/result.hpp"
#include "faults/model.hpp"
#include "trace/trace.hpp"

namespace osim::dimemas {

struct ReplayOptions {
  bool record_timeline = false;  // populate SimResult::timelines
  bool record_comms = false;     // populate SimResult::comms
  /// Populate SimResult::metrics (wait-time attribution, resource
  /// occupancy, protocol counters). Collection is passive: replay results
  /// are bit-identical with this flag on or off, and the hooks cost
  /// nothing when it is off.
  bool collect_metrics = false;
  bool auto_expand_collectives = true;
  CollectiveAlgo collective_algo = CollectiveAlgo::kBinomialTree;
  bool validate_input = true;
  /// Abort with osim::Error if simulated time exceeds this (runaway guard).
  double max_sim_time_s = std::numeric_limits<double>::infinity();
  /// Deterministic fault & perturbation injection (see faults/model.hpp).
  /// Inert by default: with faults.enabled() == false no injector is
  /// constructed and replay results are bit-identical to a fault-free
  /// build. SimResult::fault_counts reports the injected activity.
  faults::FaultModel faults;
  /// MPI progress-engine regime (see dimemas/progress.hpp). Inert by
  /// default: the offload regime takes exactly the historical code paths,
  /// so results are bit-identical to a build without the axis.
  ProgressModel progress;
  /// Cooperative stop signal (see common/cancel.hpp), polled from the
  /// event loop on an amortized stride; when it fires, replay throws
  /// CancelledError carrying the partial progress so far. Null or unarmed
  /// = never polled. Deliberately NOT part of the scenario fingerprint
  /// (pipeline/context.cpp): a watchdog changes whether a scenario
  /// finished, not what it is. The token must outlive the replay call.
  const CancelToken* cancel = nullptr;
};

/// Replays `trace` on `platform`. Throws osim::Error on malformed traces or
/// deadlock (with a per-rank diagnostic of where each rank is stuck).
SimResult replay(const trace::Trace& trace, const Platform& platform,
                 const ReplayOptions& options = {});

}  // namespace osim::dimemas
