// Target-machine description, mirroring the Dimemas parametrization quoted
// in the paper: "The interconnect is parametrized by bandwidth, latency and
// the number of global buses (denoting how many messages are allowed to
// concurrently travel throughout the network). Also, each processor is
// characterized by the number of input/output ports that determine its
// injection rate to the network."
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace osim::dimemas {

enum class NetworkModelKind : std::uint8_t {
  kBus,        // Dimemas model: latency + size/bw, global buses, node ports
  kFairShare,  // detailed reference model: max-min fair link/fabric sharing
};

struct Platform {
  std::int32_t num_nodes = 0;  // one MPI rank per node, as in the paper

  /// Relative CPU speed: simulated burst time =
  /// instructions / (trace MIPS * relative_cpu_speed).
  double relative_cpu_speed = 1.0;

  /// Optional per-node CPU speed multipliers (heterogeneous machines /
  /// straggler studies). When non-empty, node n runs at
  /// relative_cpu_speed * per_node_cpu_speed[n]; must have num_nodes
  /// entries.
  std::vector<double> per_node_cpu_speed;

  double node_cpu_speed(std::int32_t node) const {
    if (per_node_cpu_speed.empty()) return relative_cpu_speed;
    return relative_cpu_speed *
           per_node_cpu_speed[static_cast<std::size_t>(node)];
  }

  // --- interconnect -----------------------------------------------------
  NetworkModelKind model = NetworkModelKind::kBus;
  double bandwidth_MBps = 250.0;  // per-link unidirectional bandwidth
  double latency_us = 8.0;        // per-message startup latency
  /// Per-message endpoint overhead (the LogGP "o"): time the sending and
  /// receiving ports stay occupied per message on top of the serialization
  /// time. 0 (the default) reproduces the pure linear model, where
  /// zero-byte messages occupy no endpoint resources at all.
  double per_message_overhead_us = 0.0;

  // Bus model parameters.
  std::int32_t num_buses = 0;     // 0 = unlimited concurrent messages
  std::int32_t input_ports = 1;   // concurrent receptions per node
  std::int32_t output_ports = 1;  // concurrent injections per node

  // Fair-share (detailed reference) model parameter: aggregate switch
  // capacity as a multiple of the link bandwidth; <= 0 → unlimited fabric.
  double fabric_capacity_links = 0.0;

  /// Messages up to this size use the eager protocol (transfer starts at
  /// the send call); larger messages use rendezvous (transfer starts once
  /// the matching receive is posted).
  std::uint64_t eager_threshold_bytes = 16 * 1024;

  double bandwidth_Bps() const { return bandwidth_MBps * 1.0e6; }
  double latency_s() const { return latency_us * 1.0e-6; }
  double per_message_overhead_s() const {
    return per_message_overhead_us * 1.0e-6;
  }

  /// The paper's test-bed: Marenostrum-like node (PowerPC 970 @ 2.3 GHz)
  /// with a Myrinet network of 250 MB/s unidirectional bandwidth. The bus
  /// count is per-application (Table I) and set by the caller.
  static Platform marenostrum(std::int32_t num_nodes, std::int32_t buses);

  /// The detailed reference machine used as "the real run" in our
  /// reproduction (see DESIGN.md substitutions): same links, max-min fair
  /// sharing, finite switch fabric.
  static Platform reference_machine(std::int32_t num_nodes);

  std::string describe() const;
};

}  // namespace osim::dimemas
