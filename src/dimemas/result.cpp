#include "dimemas/result.hpp"

#include "common/expect.hpp"

namespace osim::dimemas {

const char* rank_state_name(RankState state) {
  switch (state) {
    case RankState::kCompute:
      return "compute";
    case RankState::kSendBlocked:
      return "send";
    case RankState::kRecvBlocked:
      return "recv";
    case RankState::kWaitBlocked:
      return "wait";
    case RankState::kCollective:
      return "collective";
  }
  OSIM_UNREACHABLE("bad RankState");
}

double SimResult::total_compute_s() const {
  double total = 0.0;
  for (const auto& rs : rank_stats) total += rs.compute_s;
  return total;
}

double SimResult::total_blocked_s() const {
  double total = 0.0;
  for (const auto& rs : rank_stats) total += rs.blocked_s();
  return total;
}

double SimResult::efficiency() const {
  if (rank_stats.empty() || makespan <= 0.0) return 0.0;
  return total_compute_s() /
         (static_cast<double>(rank_stats.size()) * makespan);
}

}  // namespace osim::dimemas
