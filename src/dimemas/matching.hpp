// The MPI point-to-point matching rule, factored out of the replayer so
// other consumers (the trace linter's matching and deadlock passes) apply
// exactly the discipline the simulator does instead of re-deriving it:
// receives match announced sends in post order, sends match posted receives
// in announce order, ANY_SOURCE / ANY_TAG wildcards are honoured, and a
// receive may provide a larger buffer than the message (MPI truncation in
// the other direction never matches).
#pragma once

#include <cstdint>

#include "trace/record.hpp"

namespace osim::dimemas {

/// The sender-side envelope of a point-to-point message.
struct SendEnvelope {
  trace::Rank src = 0;
  trace::Rank dst = 0;
  trace::Tag tag = 0;
  std::uint64_t bytes = 0;
};

/// The receiver-side envelope; `src` / `tag` may be wildcards.
struct RecvEnvelope {
  trace::Rank src = trace::kAnyRank;
  trace::Rank dst = 0;
  trace::Tag tag = trace::kAnyTag;
  std::uint64_t bytes = 0;
};

/// True when `recv` accepts `send` under the replayer's matching rule.
/// Both envelopes must target the same destination rank; the caller keeps
/// per-destination queues, so `dst` is not re-checked here.
inline bool envelope_matches(const RecvEnvelope& recv,
                             const SendEnvelope& send) {
  if (recv.src != trace::kAnyRank && recv.src != send.src) return false;
  if (recv.tag != trace::kAnyTag && recv.tag != send.tag) return false;
  return recv.bytes >= send.bytes;  // MPI allows a larger recv buffer
}

}  // namespace osim::dimemas
