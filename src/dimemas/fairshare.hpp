// Max-min fair bandwidth allocation (progressive filling / water-filling).
//
// Used by the detailed "reference machine" network model: concurrent
// transfers share each node's injection link, each node's reception link,
// and the switch fabric's aggregate capacity; rates are the classic max-min
// fair allocation over those capacities.
#pragma once

#include <cstdint>
#include <vector>

namespace osim::dimemas {

struct FlowSpec {
  std::int32_t src_node = 0;
  std::int32_t dst_node = 0;
};

struct FairShareCaps {
  std::int32_t num_nodes = 0;
  double link_out_Bps = 0.0;   // per-node injection capacity
  double link_in_Bps = 0.0;    // per-node reception capacity
  double fabric_Bps = 0.0;     // aggregate switch capacity; <=0 → unlimited
};

/// Returns the max-min fair rate (bytes/s) for each flow. Every flow gets a
/// strictly positive rate as long as all capacities are positive.
std::vector<double> maxmin_rates(const std::vector<FlowSpec>& flows,
                                 const FairShareCaps& caps);

}  // namespace osim::dimemas
