#include "trace/annotated.hpp"

#include "common/expect.hpp"
#include "common/strings.hpp"

namespace osim::trace {

AnnotatedTrace AnnotatedTrace::make(std::int32_t num_ranks, double mips,
                                    std::string app) {
  OSIM_CHECK(num_ranks > 0);
  OSIM_CHECK(mips > 0.0);
  AnnotatedTrace t;
  t.num_ranks = num_ranks;
  t.mips = mips;
  t.app = std::move(app);
  t.ranks.resize(static_cast<std::size_t>(num_ranks));
  return t;
}

namespace {

[[noreturn]] void fail(Rank rank, std::size_t index, const std::string& why) {
  throw Error(strprintf("annotated trace validation: rank %d event %zu: %s",
                        rank, index, why.c_str()));
}

bool is_send(const AnnEvent& ev) {
  return ev.kind == AnnEvent::Kind::kSend ||
         ev.kind == AnnEvent::Kind::kIsend;
}

bool is_recv(const AnnEvent& ev) {
  return ev.kind == AnnEvent::Kind::kRecv ||
         ev.kind == AnnEvent::Kind::kIrecv;
}

}  // namespace

void validate(const AnnotatedTrace& trace) {
  if (trace.num_ranks <= 0) throw Error("annotated trace has no ranks");
  if (trace.ranks.size() != static_cast<std::size_t>(trace.num_ranks)) {
    throw Error("annotated trace rank count mismatch");
  }
  for (Rank rank = 0; rank < trace.num_ranks; ++rank) {
    const auto& stream = trace.ranks[static_cast<std::size_t>(rank)];
    std::uint64_t prev_vclock = 0;
    for (std::size_t i = 0; i < stream.events.size(); ++i) {
      const AnnEvent& ev = stream.events[i];
      if (ev.vclock < prev_vclock) fail(rank, i, "vclock went backwards");
      prev_vclock = ev.vclock;

      if (is_send(ev) || is_recv(ev)) {
        if (ev.elem_bytes == 0) fail(rank, i, "elem_bytes is zero");
        if (ev.bytes % ev.elem_bytes != 0) {
          fail(rank, i, "bytes not a multiple of elem_bytes");
        }
      }
      const std::uint64_t num_elems =
          ev.elem_bytes == 0 ? 0 : ev.bytes / ev.elem_bytes;

      if (is_send(ev)) {
        if (!ev.elem_last_store.empty()) {
          if (ev.elem_last_store.size() != num_elems) {
            fail(rank, i,
                 strprintf("elem_last_store has %zu entries, expected %llu",
                           ev.elem_last_store.size(),
                           static_cast<unsigned long long>(num_elems)));
          }
          if (ev.interval_start > ev.vclock) {
            fail(rank, i, "production interval starts after the send");
          }
          for (const std::uint64_t t : ev.elem_last_store) {
            if (t == kNeverAccessed) continue;
            if (t < ev.interval_start || t > ev.vclock) {
              fail(rank, i, "element last-store outside production interval");
            }
          }
        }
        if (ev.chunkable && ev.elem_last_store.empty()) {
          fail(rank, i, "chunkable send without production annotations");
        }
      } else if (is_recv(ev)) {
        if (!ev.elem_first_load.empty()) {
          if (ev.elem_first_load.size() != num_elems) {
            fail(rank, i,
                 strprintf("elem_first_load has %zu entries, expected %llu",
                           ev.elem_first_load.size(),
                           static_cast<unsigned long long>(num_elems)));
          }
          if (ev.interval_end < ev.vclock) {
            fail(rank, i, "consumption interval ends before the recv");
          }
          for (const std::uint64_t t : ev.elem_first_load) {
            if (t == kNeverAccessed) continue;
            if (t < ev.vclock || t > ev.interval_end) {
              fail(rank, i, "element first-load outside consumption interval");
            }
          }
        }
        if (ev.chunkable && ev.elem_first_load.empty()) {
          fail(rank, i, "chunkable recv without consumption annotations");
        }
        if (ev.kind == AnnEvent::Kind::kIrecv && ev.wait_event_index >= 0) {
          const auto widx = static_cast<std::size_t>(ev.wait_event_index);
          if (widx >= stream.events.size() ||
              stream.events[widx].kind != AnnEvent::Kind::kWait) {
            fail(rank, i, "irecv wait_event_index does not point at a wait");
          }
          if (widx <= i) fail(rank, i, "irecv wait precedes the irecv");
        }
      } else if (ev.kind == AnnEvent::Kind::kWait) {
        if (ev.wait_requests.empty()) {
          fail(rank, i, "wait event with no requests");
        }
      }
    }
    if (!stream.events.empty() &&
        stream.final_vclock < stream.events.back().vclock) {
      fail(rank, stream.events.size() - 1,
           "final_vclock precedes the last event");
    }
  }
}

}  // namespace osim::trace
