// Text (de)serialization of replayable traces.
//
// Format (line oriented, whitespace separated, '#' comments):
//
//   #OSIM-TRACE v1
//   meta app nas_cg
//   meta ranks 4
//   meta mips 2300
//   rank 0
//   c 123456                 # cpu burst, instructions
//   s 3 7 65536              # blocking send: dest tag bytes
//   is 3 7 65536 12          # immediate send: dest tag bytes request
//   r 2 7 65536              # blocking recv: src tag bytes
//   ir 2 7 65536 13          # immediate recv: src tag bytes request
//   w 12 13                  # wait: request ids
//   g allreduce 0 8 4        # global op: kind root bytes sequence
//
// This mirrors the role of the Dimemas trace file between the paper's
// Valgrind tool and the Dimemas simulator: the pipeline stages can run as
// separate processes exchanging files.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/trace.hpp"

namespace osim::trace {

void write_text(const Trace& trace, std::ostream& out);
std::string write_text(const Trace& trace);
void write_text_file(const Trace& trace, const std::string& path);

/// Parses a trace; throws osim::Error with a line number on malformed input.
Trace read_text(std::istream& in);
Trace read_text(const std::string& text);
Trace read_text_file(const std::string& path);

}  // namespace osim::trace
