// Text (de)serialization of annotated traces, so the tracing stage can run
// once and the overlap transformation can be re-run offline with different
// options (chunk counts, mechanism toggles, ideal vs measured patterns).
//
// Format (line oriented, whitespace separated, '#' comments):
//
//   #OSIM-ANNTRACE v1
//   meta app nas_cg
//   meta ranks 2
//   meta mips 2300
//   rank 0 final 123456
//   s  <vclock> <peer> <tag> <elem_bytes> <nelems> <buffer> <chunkable>
//      <interval_start> [per-element last-store vclocks; '-' = never]
//   is <vclock> <req> <peer> <tag> ... (same trailer as s)
//   r  <vclock> <peer> <tag> <elem_bytes> <nelems> <buffer> <chunkable>
//      <interval_end> <wait_event_index> [per-element first-load vclocks]
//   ir <vclock> <req> <peer> <tag> ... (same trailer as r)
//   w  <vclock> <request ids...>
//   g  <vclock> <collective> <root> <bytes> <sequence>
//
// Untracked transfers (buffer = -1) carry no per-element trailer.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/annotated.hpp"

namespace osim::trace {

void write_annotated(const AnnotatedTrace& trace, std::ostream& out);
std::string write_annotated(const AnnotatedTrace& trace);
void write_annotated_file(const AnnotatedTrace& trace,
                          const std::string& path);

/// Throws osim::Error with a line number on malformed input.
AnnotatedTrace read_annotated(std::istream& in);
AnnotatedTrace read_annotated(const std::string& text);
AnnotatedTrace read_annotated_file(const std::string& path);

}  // namespace osim::trace
