#include "trace/mmap_file.hpp"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/expect.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define OSIM_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define OSIM_HAVE_MMAP 0
#endif

namespace osim::trace {

namespace {

#if !OSIM_HAVE_MMAP
std::string read_whole_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open trace file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) throw Error("error reading trace file: " + path);
  return std::move(buf).str();
}
#endif

#if OSIM_HAVE_MMAP
/// Drains an already-open descriptor. Used for everything mmap cannot take
/// (pipes, devices, zero-length files): re-opening the path — as the old
/// fallback did — consumes nothing from a regular file but loses data or
/// blocks forever on a FIFO whose writer only opens it once.
std::string read_whole_fd(int fd, const std::string& path) {
  std::string out;
  char chunk[1 << 16];
  while (true) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n == 0) return out;
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error("error reading trace file: " + path);
    }
    out.append(chunk, static_cast<std::size_t>(n));
  }
}
#endif

}  // namespace

MappedFile MappedFile::open(const std::string& path) {
  MappedFile file;
#if OSIM_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw Error("cannot open trace file: " + path);
  struct stat st = {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw Error("cannot stat trace file: " + path);
  }
  // Only regular, non-empty files are mappable (mmap of length 0 is EINVAL;
  // pipes and devices have no fixed extent). Everything else falls back.
  if (S_ISREG(st.st_mode) && st.st_size > 0) {
    void* addr = ::mmap(nullptr, static_cast<std::size_t>(st.st_size),
                        PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr != MAP_FAILED) {
      ::close(fd);
      file.data_ = static_cast<const char*>(addr);
      file.size_ = static_cast<std::size_t>(st.st_size);
      file.mapped_ = true;
      return file;
    }
  }
  // Buffered fallback from the descriptor we already hold — never a
  // path re-open, which would lose data on pipes and /dev/stdin.
  try {
    file.fallback_ = read_whole_fd(fd, path);
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
#else
  file.fallback_ = read_whole_file(path);
#endif
  file.data_ = file.fallback_.data();
  file.size_ = file.fallback_.size();
  file.mapped_ = false;
  return file;
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(other.data_),
      size_(other.size_),
      mapped_(other.mapped_),
      fallback_(std::move(other.fallback_)) {
  if (!mapped_) data_ = fallback_.data();
  other.data_ = nullptr;
  other.size_ = 0;
  other.mapped_ = false;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    this->~MappedFile();
    new (this) MappedFile(std::move(other));
  }
  return *this;
}

MappedFile::~MappedFile() {
#if OSIM_HAVE_MMAP
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<char*>(data_), size_);
  }
#endif
}

MemStream& MemStream::read(char* out, std::streamsize n) {
  const auto want = static_cast<std::size_t>(n);
  const std::size_t have = size_ - pos_;
  if (want > have) {
    std::memcpy(out, data_ + pos_, have);
    pos_ = size_;
    eof_ = true;
    fail_ = true;
    return *this;
  }
  std::memcpy(out, data_ + pos_, want);
  pos_ += want;
  return *this;
}

}  // namespace osim::trace
