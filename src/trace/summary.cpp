#include "trace/summary.hpp"

#include <algorithm>
#include <limits>
#include <bit>
#include <sstream>

#include "common/strings.hpp"
#include "common/units.hpp"

namespace osim::trace {

double TraceSummary::total_compute_s() const {
  return instructions_to_s(total_instructions, mips);
}

double TraceSummary::mean_message_bytes() const {
  if (total_messages == 0) return 0.0;
  return static_cast<double>(total_bytes) /
         static_cast<double>(total_messages);
}

namespace {

std::size_t bucket_of(std::uint64_t bytes) {
  if (bytes <= 1) return 0;
  return std::min<std::size_t>(
      static_cast<std::size_t>(std::bit_width(bytes) - 1), 31);
}

}  // namespace

TraceSummary summarize(const Trace& trace) {
  TraceSummary s;
  s.num_ranks = trace.num_ranks;
  s.mips = trace.mips;
  s.app = trace.app;
  s.ranks.resize(static_cast<std::size_t>(trace.num_ranks));
  s.min_message_bytes = std::numeric_limits<std::uint64_t>::max();

  for (Rank rank = 0; rank < trace.num_ranks; ++rank) {
    RankSummary& rs = s.ranks[static_cast<std::size_t>(rank)];
    for (const Record& rec : trace.ranks[static_cast<std::size_t>(rank)]) {
      ++rs.records;
      if (const auto* burst = std::get_if<CpuBurst>(&rec)) {
        rs.instructions += burst->instructions;
      } else if (const auto* send = std::get_if<Send>(&rec)) {
        ++rs.sends;
        rs.bytes_sent += send->bytes;
        s.size_histogram[bucket_of(send->bytes)]++;
        s.min_message_bytes = std::min(s.min_message_bytes, send->bytes);
        s.max_message_bytes = std::max(s.max_message_bytes, send->bytes);
      } else if (std::holds_alternative<Recv>(rec)) {
        ++rs.recvs;
      } else if (std::holds_alternative<Wait>(rec)) {
        ++rs.waits;
      } else if (std::holds_alternative<GlobalOp>(rec)) {
        ++rs.collectives;
      }
    }
    s.total_records += rs.records;
    s.total_instructions += rs.instructions;
    s.total_messages += rs.sends;
    s.total_bytes += rs.bytes_sent;
    s.total_collectives += rs.collectives;
  }
  if (s.total_messages == 0) s.min_message_bytes = 0;
  return s;
}

std::string render(const TraceSummary& s) {
  std::ostringstream os;
  os << "trace: app=" << (s.app.empty() ? "-" : s.app)
     << " ranks=" << s.num_ranks << " mips=" << strprintf("%g", s.mips)
     << "\n";
  os << strprintf("  records: %zu total, %zu p2p messages, %zu collective "
                  "op instances\n",
                  s.total_records, s.total_messages, s.total_collectives);
  os << strprintf("  compute: %llu instructions (%s sequential)\n",
                  static_cast<unsigned long long>(s.total_instructions),
                  format_seconds(s.total_compute_s()).c_str());
  os << strprintf("  volume:  %s across p2p messages (min %s, mean %s, "
                  "max %s)\n",
                  format_bytes(static_cast<double>(s.total_bytes)).c_str(),
                  format_bytes(static_cast<double>(s.min_message_bytes))
                      .c_str(),
                  format_bytes(s.mean_message_bytes()).c_str(),
                  format_bytes(static_cast<double>(s.max_message_bytes))
                      .c_str());
  os << "  message sizes:\n";
  for (std::size_t b = 0; b < s.size_histogram.size(); ++b) {
    if (s.size_histogram[b] == 0) continue;
    os << strprintf("    [%8s, %8s): %zu\n",
                    format_bytes(static_cast<double>(1ull << b)).c_str(),
                    format_bytes(static_cast<double>(2ull << b)).c_str(),
                    s.size_histogram[b]);
  }
  os << "  per rank:\n";
  for (std::size_t r = 0; r < s.ranks.size(); ++r) {
    const RankSummary& rs = s.ranks[r];
    os << strprintf(
        "    rank %3zu: %7zu records, %6zu sends (%s), %6zu recvs, "
        "%5zu waits, %5zu collectives, compute %s\n",
        r, rs.records, rs.sends,
        format_bytes(static_cast<double>(rs.bytes_sent)).c_str(), rs.recvs,
        rs.waits, rs.collectives,
        format_seconds(instructions_to_s(rs.instructions, s.mips)).c_str());
  }
  return os.str();
}

}  // namespace osim::trace
