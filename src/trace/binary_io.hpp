// Binary trace (de)serialization.
//
// The text format (io.hpp) is the interchange format; the binary format is
// for large traces where parsing dominates (~10x smaller and faster to
// load). Integers are LEB128 varints (zigzag for signed). Layout:
//
//   magic "OSIMBT01" (8 bytes)
//   f64 mips (fixed), varint num_ranks, varint app_len, app bytes
//   per rank: varint record_count, then records:
//     u8 kind: 0 = CpuBurst  varint instructions
//              1 = Send      svarint dest, svarint tag, varint bytes,
//                            u8 flags (bit0 immediate, bit1 synchronous),
//                            svarint request
//              2 = Recv      svarint src, svarint tag, varint bytes,
//                            u8 flags, svarint request
//              3 = Wait      varint count, count x svarint requests
//              4 = GlobalOp  u8 collective, svarint root, varint bytes,
//                            svarint sequence
//
// read_any_file() sniffs the magic and dispatches to the right reader, so
// the tools accept either format transparently.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/trace.hpp"

namespace osim::trace {

void write_binary(const Trace& trace, std::ostream& out);
void write_binary_file(const Trace& trace, const std::string& path);

/// Throws osim::Error on truncated or corrupt input.
Trace read_binary(std::istream& in);
Trace read_binary_file(const std::string& path);

/// Reads a trace file in either format, dispatching on the leading magic.
Trace read_any_file(const std::string& path);

}  // namespace osim::trace
