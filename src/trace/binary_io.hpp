// Binary trace (de)serialization.
//
// The text format (io.hpp) is the interchange format; the binary format is
// for large traces where parsing dominates (~10x smaller and faster to
// load). Integers are LEB128 varints (zigzag for signed). Layout:
//
//   magic "OSIMBT01" (8 bytes)
//   f64 mips (fixed), varint num_ranks, varint app_len, app bytes
//   per rank: varint record_count, then records:
//     u8 kind: 0 = CpuBurst  varint instructions
//              1 = Send      svarint dest, svarint tag, varint bytes,
//                            u8 flags (bit0 immediate, bit1 synchronous),
//                            svarint request
//              2 = Recv      svarint src, svarint tag, varint bytes,
//                            u8 flags, svarint request
//              3 = Wait      varint count, count x svarint requests
//              4 = GlobalOp  u8 collective, svarint root, varint bytes,
//                            svarint sequence
//   integrity footer: magic "OSIMCRC1" (8 bytes), then per rank one
//     little-endian u32 CRC-32 (IEEE) over that rank's stream bytes
//     (record-count varint through last record byte)
//
// The footer is new: traces written before it still load — the strict
// reader accepts a clean EOF where the footer would start (with a logged
// warning), and old readers stopped after the last record and never saw the
// trailing bytes.
//
// Salvage mode: read_binary_recover() never throws on damaged input.
// It validates per record, reports every problem with its byte offset in a
// Damage report, and salvages the longest valid prefix. The record framing
// carries no resync points, so the first corrupt byte ends the salvage:
// everything before it (including earlier, fully-parsed ranks) is kept,
// everything after is counted as dropped.
//
// read_any_file() sniffs the magic and dispatches to the right reader, so
// the tools accept either format transparently.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace osim::trace {

void write_binary(const Trace& trace, std::ostream& out);
void write_binary_file(const Trace& trace, const std::string& path);

/// Throws osim::Error on truncated or corrupt input (including CRC
/// mismatches and trailing garbage when the integrity footer is present).
Trace read_binary(std::istream& in);
Trace read_binary_file(const std::string& path);

/// Reads a trace file in either format, dispatching on the leading magic.
Trace read_any_file(const std::string& path);

/// One problem found while reading a damaged trace.
struct DamageIssue {
  std::uint64_t offset = 0;  // byte offset from the start of the stream
  std::int32_t rank = -1;    // rank whose stream was affected; -1 = header/footer
  std::uint64_t record = 0;  // record index within the rank (when rank >= 0)
  std::string message;
};

/// Salvage report of a recovering read. clean() means the input parsed
/// exactly as the strict reader would accept it (a legacy trace without an
/// integrity footer is clean; the missing footer is only a warning).
struct Damage {
  std::vector<DamageIssue> issues;
  /// Nothing was salvageable (bad magic / unreadable header).
  bool unusable = false;
  /// Input ended before the declared record streams (or footer) did.
  bool truncated = false;
  /// Legacy trace without an integrity footer (warning, not damage).
  bool missing_footer = false;
  std::uint64_t records_salvaged = 0;
  std::uint64_t records_dropped = 0;  // declared but corrupt or missing
  std::uint64_t crc_mismatches = 0;

  bool clean() const { return issues.empty() && !unusable; }
  /// Human-readable multi-line report (empty string when clean).
  std::string render_text() const;
};

struct RecoveredTrace {
  Trace trace;
  Damage damage;
};

/// Salvaging reader: never throws on damaged bytes (I/O setup errors, e.g.
/// an unopenable file, still throw). See the file comment for semantics.
RecoveredTrace read_binary_recover(std::istream& in);

/// Either-format salvaging reader. Text traces have no partial-salvage
/// mode: a malformed text trace comes back unusable with the parse error as
/// the single issue.
RecoveredTrace read_any_file_recover(const std::string& path);

}  // namespace osim::trace
