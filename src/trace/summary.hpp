// Aggregate statistics of a replayable trace, independent of any platform:
// record counts, communication volumes, message-size distribution, and the
// compute/communication structure per rank. Used by the osim_inspect tool
// and available as a library API.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "trace/trace.hpp"

namespace osim::trace {

struct RankSummary {
  std::uint64_t instructions = 0;
  std::size_t records = 0;
  std::size_t sends = 0;
  std::size_t recvs = 0;
  std::size_t waits = 0;
  std::size_t collectives = 0;
  std::uint64_t bytes_sent = 0;
};

struct TraceSummary {
  std::int32_t num_ranks = 0;
  double mips = 0.0;
  std::string app;
  std::size_t total_records = 0;
  std::uint64_t total_instructions = 0;
  std::size_t total_messages = 0;
  std::uint64_t total_bytes = 0;
  std::size_t total_collectives = 0;  // per-rank op instances
  std::uint64_t min_message_bytes = 0;
  std::uint64_t max_message_bytes = 0;
  /// Message-size histogram with power-of-two buckets: bucket i counts
  /// messages with bytes in [2^i, 2^(i+1)); bucket 0 includes empty
  /// messages.
  std::array<std::size_t, 32> size_histogram{};
  std::vector<RankSummary> ranks;

  /// Sequential compute time implied by the trace's MIPS rate (seconds).
  double total_compute_s() const;
  double mean_message_bytes() const;
};

TraceSummary summarize(const Trace& trace);

/// Human-readable multi-line report of the summary.
std::string render(const TraceSummary& summary);

}  // namespace osim::trace
