// Read-only memory-mapped files for zero-copy trace ingestion.
//
// The binary trace parser consumes bytes sequentially; feeding it through
// an ifstream costs a buffer copy per chunk plus iostream virtual dispatch
// per byte. MappedFile maps the file read-only instead, so the parser walks
// the page cache directly. When mmap is unavailable (non-POSIX host, weird
// file kinds, empty files), the class degrades to reading the file into an
// owned buffer — callers see the same (data, size) view either way.
//
// MemStream adapts a byte span to the small istream-like subset the binary
// reader needs (get/read/peek/clear/eof + failure flag), so the same parser
// template runs over real istreams and mapped memory. A damaged mapping is
// indistinguishable from a damaged stream: the salvage path downstream works
// unchanged.
#pragma once

#include <cstddef>
#include <ios>
#include <string>

namespace osim::trace {

class MappedFile {
 public:
  /// Maps `path` read-only. Throws osim::Error if the file cannot be
  /// opened or its size determined; falls back to buffered reading if the
  /// mapping itself fails.
  static MappedFile open(const std::string& path);

  MappedFile() = default;
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  const char* data() const { return data_; }
  std::size_t size() const { return size_; }
  /// True when the view is a real mmap (false: fallback buffer).
  bool mapped() const { return mapped_; }

 private:
  const char* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;
  std::string fallback_;  // owns the bytes when !mapped_
};

/// Sequential cursor over a byte span with the istream-subset interface the
/// binary trace reader uses. EOF and failure semantics mirror std::istream:
/// get()/peek() return EOF (-1) past the end, a short read() sets the
/// failure flag, clear() resets it.
class MemStream {
 public:
  MemStream(const char* data, std::size_t size) : data_(data), size_(size) {}
  explicit MemStream(const MappedFile& file)
      : MemStream(file.data(), file.size()) {}

  int get() {
    if (pos_ >= size_) {
      eof_ = true;
      fail_ = true;
      return -1;
    }
    return static_cast<unsigned char>(data_[pos_++]);
  }

  int peek() {
    if (pos_ >= size_) {
      eof_ = true;
      return -1;
    }
    return static_cast<unsigned char>(data_[pos_]);
  }

  MemStream& read(char* out, std::streamsize n);

  void clear() {
    eof_ = false;
    fail_ = false;
  }

  bool eof() const { return eof_; }
  bool operator!() const { return fail_; }
  explicit operator bool() const { return !fail_; }

 private:
  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool eof_ = false;
  bool fail_ = false;
};

}  // namespace osim::trace
