// Struct-of-arrays record streams for the replay inner loop.
//
// The canonical trace stores records as std::vector<std::variant<...>>:
// ~48 bytes per record whatever its kind, a discriminator buried mid-line,
// and Wait's request list on a separate heap block. The replay interpreter
// touches every record exactly once, in order, so it wants the opposite
// layout: one dense kind byte per record and per-field arrays per lane, so
// walking a stream reads consecutive cache lines and dispatch is a byte
// compare instead of variant machinery.
//
// compile() lowers a validated, collective-free trace (GlobalOps must have
// been expanded) into that layout. It is a one-pass O(records) copy; the
// replay loop's streaming reads repay it. The canonical Trace remains the
// source of truth — the compiled form is a derived, per-replay view and
// never outlives the trace it was built from.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/trace.hpp"

namespace osim::trace {

enum class LaneKind : std::uint8_t { kCpu = 0, kSend = 1, kRecv = 2, kWait = 3 };

/// One rank's record stream, lowered field-by-field. `kind[i]` selects the
/// lane of record i and `slot[i]` indexes that lane's arrays.
struct CompiledStream {
  std::vector<LaneKind> kind;
  std::vector<std::uint32_t> slot;

  // CpuBurst lane.
  std::vector<std::uint64_t> burst_instructions;

  // Send lane (one array per field).
  std::vector<Rank> send_dest;
  std::vector<Tag> send_tag;
  std::vector<std::uint64_t> send_bytes;
  std::vector<ReqId> send_request;
  std::vector<std::uint8_t> send_immediate;
  std::vector<std::uint8_t> send_synchronous;

  // Recv lane.
  std::vector<Rank> recv_src;
  std::vector<Tag> recv_tag;
  std::vector<std::uint64_t> recv_bytes;
  std::vector<ReqId> recv_request;
  std::vector<std::uint8_t> recv_immediate;

  // Wait lane: request lists flattened into one array; wait w waits on
  // wait_requests[wait_begin[w] .. wait_begin[w + 1]).
  std::vector<std::uint32_t> wait_begin;  // wait_count + 1 entries
  std::vector<ReqId> wait_requests;

  std::size_t records() const { return kind.size(); }
};

struct CompiledTrace {
  std::vector<CompiledStream> ranks;
};

/// Lowers every rank stream. Throws osim::Error if the trace still
/// contains GlobalOp records (expand collectives first).
CompiledTrace compile(const Trace& trace);

}  // namespace osim::trace
