#include "trace/soa.hpp"

#include <variant>

#include "common/expect.hpp"

namespace osim::trace {

namespace {

CompiledStream compile_stream(const std::vector<Record>& records) {
  CompiledStream s;
  const std::size_t n = records.size();
  s.kind.reserve(n);
  s.slot.reserve(n);
  s.wait_begin.push_back(0);
  for (const Record& rec : records) {
    if (const auto* burst = std::get_if<CpuBurst>(&rec)) {
      s.kind.push_back(LaneKind::kCpu);
      s.slot.push_back(static_cast<std::uint32_t>(
          s.burst_instructions.size()));
      s.burst_instructions.push_back(burst->instructions);
    } else if (const auto* send = std::get_if<Send>(&rec)) {
      s.kind.push_back(LaneKind::kSend);
      s.slot.push_back(static_cast<std::uint32_t>(s.send_dest.size()));
      s.send_dest.push_back(send->dest);
      s.send_tag.push_back(send->tag);
      s.send_bytes.push_back(send->bytes);
      s.send_request.push_back(send->request);
      s.send_immediate.push_back(send->immediate ? 1 : 0);
      s.send_synchronous.push_back(send->synchronous ? 1 : 0);
    } else if (const auto* recv = std::get_if<Recv>(&rec)) {
      s.kind.push_back(LaneKind::kRecv);
      s.slot.push_back(static_cast<std::uint32_t>(s.recv_src.size()));
      s.recv_src.push_back(recv->src);
      s.recv_tag.push_back(recv->tag);
      s.recv_bytes.push_back(recv->bytes);
      s.recv_request.push_back(recv->request);
      s.recv_immediate.push_back(recv->immediate ? 1 : 0);
    } else if (const auto* wait = std::get_if<Wait>(&rec)) {
      s.kind.push_back(LaneKind::kWait);
      s.slot.push_back(static_cast<std::uint32_t>(
          s.wait_begin.size() - 1));
      s.wait_requests.insert(s.wait_requests.end(), wait->requests.begin(),
                             wait->requests.end());
      s.wait_begin.push_back(
          static_cast<std::uint32_t>(s.wait_requests.size()));
    } else {
      throw Error(
          "trace::compile: GlobalOp in record stream (expand collectives "
          "before compiling)");
    }
  }
  return s;
}

}  // namespace

CompiledTrace compile(const Trace& trace) {
  CompiledTrace compiled;
  compiled.ranks.reserve(trace.ranks.size());
  for (const std::vector<Record>& stream : trace.ranks) {
    compiled.ranks.push_back(compile_stream(stream));
  }
  return compiled;
}

}  // namespace osim::trace
