#include "trace/binary_io.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/crc32.hpp"
#include "common/expect.hpp"
#include "common/log.hpp"
#include "common/strings.hpp"
#include "trace/io.hpp"
#include "trace/mmap_file.hpp"

static_assert(std::endian::native == std::endian::little,
              "binary trace format assumes a little-endian host");

namespace osim::trace {

namespace {

constexpr char kMagic[8] = {'O', 'S', 'I', 'M', 'B', 'T', '0', '1'};
constexpr char kCrcMagic[8] = {'O', 'S', 'I', 'M', 'C', 'R', 'C', '1'};

constexpr std::uint8_t kKindCpu = 0;
constexpr std::uint8_t kKindSend = 1;
constexpr std::uint8_t kKindRecv = 2;
constexpr std::uint8_t kKindWait = 3;
constexpr std::uint8_t kKindGlobal = 4;

constexpr std::uint8_t kFlagImmediate = 1;
constexpr std::uint8_t kFlagSynchronous = 2;

// Cap for pre-allocation from untrusted counts: a fuzzed or corrupt count
// must not translate into an unbounded reserve() before the records behind
// it have actually been read.
constexpr std::uint64_t kMaxReserve = 65536;

class Writer {
 public:
  explicit Writer(std::ostream& out) : out_(out) {}

  /// LEB128 variable-length unsigned integer.
  void put_varint(std::uint64_t value) {
    while (value >= 0x80) {
      put_byte(static_cast<std::uint8_t>(value) | 0x80);
      value >>= 7;
    }
    put_byte(static_cast<std::uint8_t>(value));
  }

  /// Zigzag-encoded signed integer (small magnitudes stay small).
  void put_svarint(std::int64_t value) {
    put_varint((static_cast<std::uint64_t>(value) << 1) ^
               static_cast<std::uint64_t>(value >> 63));
  }

  void put_byte(std::uint8_t byte) {
    if (crc_ != nullptr) crc_->update(byte);
    out_.put(static_cast<char>(byte));
  }

  void put_double(double value) {
    if (crc_ != nullptr) crc_->update(&value, sizeof(value));
    out_.write(reinterpret_cast<const char*>(&value), sizeof(value));
  }

  void put_bytes(const char* data, std::size_t n) {
    if (crc_ != nullptr) crc_->update(data, n);
    out_.write(data, static_cast<std::streamsize>(n));
  }

  void put_u32(std::uint32_t value) {
    for (int i = 0; i < 4; ++i) {
      put_byte(static_cast<std::uint8_t>(value >> (8 * i)));
    }
  }

  /// Routes subsequent writes through `crc` (nullptr detaches).
  void set_crc(Crc32* crc) { crc_ = crc; }

  std::ostream& out_;
  Crc32* crc_ = nullptr;
};

/// Templated over the byte source: std::istream for stream callers, or
/// MemStream over a MappedFile for the zero-copy file path. Both expose the
/// same get/read/peek/clear/eof subset.
template <typename Stream>
class Reader {
 public:
  explicit Reader(Stream& in) : in_(in) {}

  std::uint64_t get_varint() {
    std::uint64_t value = 0;
    int shift = 0;
    for (;;) {
      const std::uint8_t byte = get_byte();
      if (shift >= 64) throw Error("binary trace: varint overflow");
      value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) return value;
      shift += 7;
    }
  }

  std::int64_t get_svarint() {
    const std::uint64_t raw = get_varint();
    return static_cast<std::int64_t>((raw >> 1) ^ (~(raw & 1) + 1));
  }

  std::uint8_t get_byte() {
    const int c = in_.get();
    if (c == EOF) throw Error("binary trace: unexpected end of file");
    ++consumed_;
    const auto byte = static_cast<std::uint8_t>(c);
    if (crc_ != nullptr) crc_->update(byte);
    return byte;
  }

  double get_double() {
    double value = 0.0;
    in_.read(reinterpret_cast<char*>(&value), sizeof(value));
    if (!in_) throw Error("binary trace: unexpected end of file");
    consumed_ += sizeof(value);
    if (crc_ != nullptr) crc_->update(&value, sizeof(value));
    return value;
  }

  std::string get_string(std::size_t n) {
    std::string s(n, '\0');
    in_.read(s.data(), static_cast<std::streamsize>(n));
    if (!in_) throw Error("binary trace: unexpected end of file");
    consumed_ += n;
    if (crc_ != nullptr) crc_->update(s.data(), n);
    return s;
  }

  std::uint32_t get_u32() {
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      value |= static_cast<std::uint32_t>(get_byte()) << (8 * i);
    }
    return value;
  }

  bool at_eof() {
    const int c = in_.peek();
    if (c == EOF) {
      in_.clear();
      return true;
    }
    return false;
  }

  /// Bytes consumed from the start of the stream (damage-report offsets).
  std::uint64_t consumed() const { return consumed_; }

  /// Routes subsequent reads through `crc` (nullptr detaches).
  void set_crc(Crc32* crc) { crc_ = crc; }

  Stream& in_;
  Crc32* crc_ = nullptr;
  std::uint64_t consumed_ = 0;
};

/// Parses one record into `stream`. Throws osim::Error on any corruption.
template <typename Stream>
void read_one_record(Reader<Stream>& r, std::vector<Record>& stream) {
  const std::uint8_t kind = r.get_byte();
  switch (kind) {
    case kKindCpu:
      stream.push_back(CpuBurst{r.get_varint()});
      break;
    case kKindSend: {
      Send send;
      send.dest = static_cast<Rank>(r.get_svarint());
      send.tag = r.get_svarint();
      send.bytes = r.get_varint();
      const std::uint8_t flags = r.get_byte();
      send.immediate = (flags & kFlagImmediate) != 0;
      send.synchronous = (flags & kFlagSynchronous) != 0;
      send.request = r.get_svarint();
      stream.push_back(send);
      break;
    }
    case kKindRecv: {
      Recv recv;
      recv.src = static_cast<Rank>(r.get_svarint());
      recv.tag = r.get_svarint();
      recv.bytes = r.get_varint();
      recv.immediate = (r.get_byte() & kFlagImmediate) != 0;
      recv.request = r.get_svarint();
      stream.push_back(recv);
      break;
    }
    case kKindWait: {
      const std::uint64_t n = r.get_varint();
      if (n == 0 || n > 1'000'000) {
        throw Error("binary trace: implausible wait size");
      }
      Wait wait;
      wait.requests.reserve(std::min(n, kMaxReserve));
      for (std::uint64_t k = 0; k < n; ++k) {
        wait.requests.push_back(r.get_svarint());
      }
      stream.push_back(std::move(wait));
      break;
    }
    case kKindGlobal: {
      GlobalOp op;
      const std::uint8_t coll = r.get_byte();
      if (coll > static_cast<std::uint8_t>(CollectiveKind::kScan)) {
        throw Error("binary trace: unknown collective kind");
      }
      op.kind = static_cast<CollectiveKind>(coll);
      op.root = static_cast<Rank>(r.get_svarint());
      op.bytes = r.get_varint();
      op.sequence = r.get_svarint();
      stream.push_back(op);
      break;
    }
    default:
      throw Error(strprintf("binary trace: unknown record kind %u",
                            static_cast<unsigned>(kind)));
  }
}

/// Shared strict/salvaging reader. `damage == nullptr` is strict mode:
/// every problem throws. With a Damage sink nothing throws; problems are
/// recorded and the longest valid prefix is returned.
template <typename Stream>
Trace read_binary_impl(Stream& in, Damage* damage) {
  Reader<Stream> r(in);
  const bool recover = damage != nullptr;

  auto report = [&](std::uint64_t offset, std::int32_t rank,
                    std::uint64_t record, const std::string& message) {
    if (!recover) throw Error(message);
    damage->issues.push_back(DamageIssue{offset, rank, record, message});
  };

  // --- header ------------------------------------------------------------
  Trace trace;
  std::uint64_t num_ranks = 0;
  try {
    const std::string magic = r.get_string(sizeof(kMagic));
    if (std::memcmp(magic.data(), kMagic, sizeof(kMagic)) != 0) {
      throw Error("binary trace: bad magic (not an OSIMBT01 file)");
    }
    const double mips = r.get_double();
    num_ranks = r.get_varint();
    if (num_ranks == 0 || num_ranks > 1'000'000) {
      throw Error("binary trace: implausible rank count");
    }
    if (mips <= 0.0) throw Error("binary trace: invalid MIPS rate");
    const std::uint64_t app_len = r.get_varint();
    if (app_len > 4096) throw Error("binary trace: implausible app name");
    trace = Trace::make(static_cast<std::int32_t>(num_ranks), mips,
                        r.get_string(app_len));
  } catch (const Error& e) {
    if (!recover) throw;
    damage->unusable = true;
    damage->issues.push_back(DamageIssue{r.consumed(), -1, 0, e.what()});
    return Trace{};
  }

  // --- per-rank record streams -------------------------------------------
  std::vector<std::uint32_t> rank_crcs;
  rank_crcs.reserve(std::min(num_ranks, kMaxReserve));
  bool desynchronized = false;
  for (std::uint64_t rank = 0; rank < num_ranks && !desynchronized; ++rank) {
    auto& stream = trace.ranks[rank];
    Crc32 crc;
    r.set_crc(&crc);
    std::uint64_t count = 0;
    std::uint64_t i = 0;
    try {
      count = r.get_varint();
      if (count > (std::uint64_t{1} << 40)) {
        throw Error("binary trace: implausible record count");
      }
      stream.reserve(std::min(count, kMaxReserve));
      for (; i < count; ++i) {
        read_one_record(r, stream);
      }
    } catch (const Error& e) {
      r.set_crc(nullptr);
      report(r.consumed(), static_cast<std::int32_t>(rank), i, e.what());
      // Recover mode from here on (report() threw in strict mode). The
      // framing has no resync point: the first corrupt byte ends the
      // salvage. Keep everything already parsed, drop the rest.
      if (in.eof()) damage->truncated = true;
      damage->records_dropped += count > i ? count - i : 0;
      if (rank + 1 < num_ranks) {
        damage->issues.push_back(DamageIssue{
            r.consumed(), static_cast<std::int32_t>(rank), i,
            strprintf("stream desynchronized: %llu later rank stream(s) "
                      "not recovered",
                      static_cast<unsigned long long>(num_ranks - rank - 1))});
      }
      desynchronized = true;
    }
    r.set_crc(nullptr);
    rank_crcs.push_back(crc.value());
    if (recover) damage->records_salvaged += stream.size();
  }

  // --- integrity footer ---------------------------------------------------
  if (!desynchronized) {
    if (r.at_eof()) {
      // Legacy trace written before the CRC footer existed: accept, warn.
      if (recover) damage->missing_footer = true;
      log::warn(
          "binary trace: no integrity footer (written by an older "
          "version); CRC verification skipped");
    } else {
      const std::uint64_t footer_offset = r.consumed();
      try {
        const std::string magic = r.get_string(sizeof(kCrcMagic));
        if (std::memcmp(magic.data(), kCrcMagic, sizeof(kCrcMagic)) != 0) {
          throw Error(
              "binary trace: trailing bytes are not an OSIMCRC1 integrity "
              "footer");
        }
        for (std::uint64_t rank = 0; rank < num_ranks; ++rank) {
          const std::uint32_t stored = r.get_u32();
          if (stored != rank_crcs[rank]) {
            if (recover) ++damage->crc_mismatches;
            report(r.consumed(), static_cast<std::int32_t>(rank), 0,
                   strprintf("binary trace: rank %llu stream CRC mismatch "
                             "(stored %08x, computed %08x)",
                             static_cast<unsigned long long>(rank), stored,
                             rank_crcs[rank]));
          }
        }
      } catch (const Error& e) {
        if (!recover) throw;
        if (in.eof()) damage->truncated = true;
        damage->issues.push_back(
            DamageIssue{footer_offset, -1, 0,
                        std::string("bad integrity footer: ") + e.what()});
      }
    }
  }
  return trace;
}

}  // namespace

void write_binary(const Trace& trace, std::ostream& out) {
  Writer w(out);
  w.put_bytes(kMagic, sizeof(kMagic));
  w.put_double(trace.mips);
  w.put_varint(static_cast<std::uint64_t>(trace.num_ranks));
  w.put_varint(trace.app.size());
  w.put_bytes(trace.app.data(), trace.app.size());
  std::vector<std::uint32_t> rank_crcs;
  rank_crcs.reserve(trace.ranks.size());
  for (const auto& stream : trace.ranks) {
    Crc32 crc;
    w.set_crc(&crc);
    w.put_varint(stream.size());
    for (const Record& rec : stream) {
      std::visit(
          [&w](const auto& r) {
            using T = std::decay_t<decltype(r)>;
            if constexpr (std::is_same_v<T, CpuBurst>) {
              w.put_byte(kKindCpu);
              w.put_varint(r.instructions);
            } else if constexpr (std::is_same_v<T, Send>) {
              w.put_byte(kKindSend);
              w.put_svarint(r.dest);
              w.put_svarint(r.tag);
              w.put_varint(r.bytes);
              std::uint8_t flags = 0;
              if (r.immediate) flags |= kFlagImmediate;
              if (r.synchronous) flags |= kFlagSynchronous;
              w.put_byte(flags);
              w.put_svarint(r.request);
            } else if constexpr (std::is_same_v<T, Recv>) {
              w.put_byte(kKindRecv);
              w.put_svarint(r.src);
              w.put_svarint(r.tag);
              w.put_varint(r.bytes);
              w.put_byte(r.immediate ? kFlagImmediate : 0);
              w.put_svarint(r.request);
            } else if constexpr (std::is_same_v<T, Wait>) {
              w.put_byte(kKindWait);
              w.put_varint(r.requests.size());
              for (const ReqId req : r.requests) {
                w.put_svarint(req);
              }
            } else if constexpr (std::is_same_v<T, GlobalOp>) {
              w.put_byte(kKindGlobal);
              w.put_byte(static_cast<std::uint8_t>(r.kind));
              w.put_svarint(r.root);
              w.put_varint(r.bytes);
              w.put_svarint(r.sequence);
            }
          },
          rec);
    }
    w.set_crc(nullptr);
    rank_crcs.push_back(crc.value());
  }
  w.put_bytes(kCrcMagic, sizeof(kCrcMagic));
  for (const std::uint32_t crc : rank_crcs) w.put_u32(crc);
  if (!out) throw Error("binary trace: write error");
}

void write_binary_file(const Trace& trace, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw Error("cannot open binary trace file: " + path);
  write_binary(trace, out);
}

namespace {

bool has_binary_magic(const MappedFile& file) {
  return file.size() >= sizeof(kMagic) &&
         std::memcmp(file.data(), kMagic, sizeof(kMagic)) == 0;
}

}  // namespace

Trace read_binary(std::istream& in) {
  return read_binary_impl(in, nullptr);
}

Trace read_binary_file(const std::string& path) {
  // Parse straight out of the mapping: no read() copies, no per-byte
  // iostream dispatch. Records are still materialized (the Trace owns its
  // data); only the ingestion path is zero-copy.
  const MappedFile file = MappedFile::open(path);
  MemStream in(file);
  return read_binary_impl(in, nullptr);
}

Trace read_any_file(const std::string& path) {
  const MappedFile file = MappedFile::open(path);
  if (has_binary_magic(file)) {
    MemStream in(file);
    return read_binary_impl(in, nullptr);
  }
  std::istringstream in(std::string(file.data(), file.size()));
  return read_text(in);
}

RecoveredTrace read_binary_recover(std::istream& in) {
  RecoveredTrace result;
  result.trace = read_binary_impl(in, &result.damage);
  return result;
}

RecoveredTrace read_any_file_recover(const std::string& path) {
  // A damaged mapping behaves exactly like a damaged stream: the salvage
  // parser reports issues and keeps the longest valid prefix.
  const MappedFile file = MappedFile::open(path);
  if (has_binary_magic(file)) {
    MemStream in(file);
    RecoveredTrace result;
    result.trace = read_binary_impl(in, &result.damage);
    return result;
  }
  RecoveredTrace result;
  try {
    std::istringstream in(std::string(file.data(), file.size()));
    result.trace = read_text(in);
  } catch (const Error& e) {
    // The text parser has no partial-salvage mode: report and bail.
    result.damage.unusable = true;
    result.damage.issues.push_back(DamageIssue{0, -1, 0, e.what()});
  }
  return result;
}

std::string Damage::render_text() const {
  if (clean()) return "";
  std::string out = "trace damage report:\n";
  for (const DamageIssue& issue : issues) {
    out += strprintf("  offset %llu",
                     static_cast<unsigned long long>(issue.offset));
    if (issue.rank >= 0) {
      out += strprintf(" rank %d record %llu", issue.rank,
                       static_cast<unsigned long long>(issue.record));
    }
    out += ": " + issue.message + "\n";
  }
  out += strprintf(
      "  records salvaged: %llu, dropped: %llu, crc mismatches: %llu%s%s\n",
      static_cast<unsigned long long>(records_salvaged),
      static_cast<unsigned long long>(records_dropped),
      static_cast<unsigned long long>(crc_mismatches),
      truncated ? ", input truncated" : "",
      unusable ? ", nothing salvaged" : "");
  return out;
}

}  // namespace osim::trace
