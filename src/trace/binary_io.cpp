#include "trace/binary_io.hpp"

#include <bit>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/expect.hpp"
#include "common/strings.hpp"
#include "trace/io.hpp"

static_assert(std::endian::native == std::endian::little,
              "binary trace format assumes a little-endian host");

namespace osim::trace {

namespace {

constexpr char kMagic[8] = {'O', 'S', 'I', 'M', 'B', 'T', '0', '1'};

constexpr std::uint8_t kKindCpu = 0;
constexpr std::uint8_t kKindSend = 1;
constexpr std::uint8_t kKindRecv = 2;
constexpr std::uint8_t kKindWait = 3;
constexpr std::uint8_t kKindGlobal = 4;

constexpr std::uint8_t kFlagImmediate = 1;
constexpr std::uint8_t kFlagSynchronous = 2;

class Writer {
 public:
  explicit Writer(std::ostream& out) : out_(out) {}

  /// LEB128 variable-length unsigned integer.
  void put_varint(std::uint64_t value) {
    while (value >= 0x80) {
      put_byte(static_cast<std::uint8_t>(value) | 0x80);
      value >>= 7;
    }
    put_byte(static_cast<std::uint8_t>(value));
  }

  /// Zigzag-encoded signed integer (small magnitudes stay small).
  void put_svarint(std::int64_t value) {
    put_varint((static_cast<std::uint64_t>(value) << 1) ^
               static_cast<std::uint64_t>(value >> 63));
  }

  void put_byte(std::uint8_t byte) {
    out_.put(static_cast<char>(byte));
  }

  void put_double(double value) {
    out_.write(reinterpret_cast<const char*>(&value), sizeof(value));
  }

  void put_bytes(const char* data, std::size_t n) {
    out_.write(data, static_cast<std::streamsize>(n));
  }

  std::ostream& out_;
};

class Reader {
 public:
  explicit Reader(std::istream& in) : in_(in) {}

  std::uint64_t get_varint() {
    std::uint64_t value = 0;
    int shift = 0;
    for (;;) {
      const std::uint8_t byte = get_byte();
      if (shift >= 64) throw Error("binary trace: varint overflow");
      value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) return value;
      shift += 7;
    }
  }

  std::int64_t get_svarint() {
    const std::uint64_t raw = get_varint();
    return static_cast<std::int64_t>((raw >> 1) ^ (~(raw & 1) + 1));
  }

  std::uint8_t get_byte() {
    const int c = in_.get();
    if (c == EOF) throw Error("binary trace: unexpected end of file");
    return static_cast<std::uint8_t>(c);
  }

  double get_double() {
    double value = 0.0;
    in_.read(reinterpret_cast<char*>(&value), sizeof(value));
    if (!in_) throw Error("binary trace: unexpected end of file");
    return value;
  }

  std::string get_string(std::size_t n) {
    std::string s(n, '\0');
    in_.read(s.data(), static_cast<std::streamsize>(n));
    if (!in_) throw Error("binary trace: unexpected end of file");
    return s;
  }

  std::istream& in_;
};

}  // namespace

void write_binary(const Trace& trace, std::ostream& out) {
  Writer w(out);
  w.put_bytes(kMagic, sizeof(kMagic));
  w.put_double(trace.mips);
  w.put_varint(static_cast<std::uint64_t>(trace.num_ranks));
  w.put_varint(trace.app.size());
  w.put_bytes(trace.app.data(), trace.app.size());
  for (const auto& stream : trace.ranks) {
    w.put_varint(stream.size());
    for (const Record& rec : stream) {
      std::visit(
          [&w](const auto& r) {
            using T = std::decay_t<decltype(r)>;
            if constexpr (std::is_same_v<T, CpuBurst>) {
              w.put_byte(kKindCpu);
              w.put_varint(r.instructions);
            } else if constexpr (std::is_same_v<T, Send>) {
              w.put_byte(kKindSend);
              w.put_svarint(r.dest);
              w.put_svarint(r.tag);
              w.put_varint(r.bytes);
              std::uint8_t flags = 0;
              if (r.immediate) flags |= kFlagImmediate;
              if (r.synchronous) flags |= kFlagSynchronous;
              w.put_byte(flags);
              w.put_svarint(r.request);
            } else if constexpr (std::is_same_v<T, Recv>) {
              w.put_byte(kKindRecv);
              w.put_svarint(r.src);
              w.put_svarint(r.tag);
              w.put_varint(r.bytes);
              w.put_byte(r.immediate ? kFlagImmediate : 0);
              w.put_svarint(r.request);
            } else if constexpr (std::is_same_v<T, Wait>) {
              w.put_byte(kKindWait);
              w.put_varint(r.requests.size());
              for (const ReqId req : r.requests) {
                w.put_svarint(req);
              }
            } else if constexpr (std::is_same_v<T, GlobalOp>) {
              w.put_byte(kKindGlobal);
              w.put_byte(static_cast<std::uint8_t>(r.kind));
              w.put_svarint(r.root);
              w.put_varint(r.bytes);
              w.put_svarint(r.sequence);
            }
          },
          rec);
    }
  }
  if (!out) throw Error("binary trace: write error");
}

void write_binary_file(const Trace& trace, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw Error("cannot open binary trace file: " + path);
  write_binary(trace, out);
}

Trace read_binary(std::istream& in) {
  Reader r(in);
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw Error("binary trace: bad magic (not an OSIMBT01 file)");
  }
  const double mips = r.get_double();
  const std::uint64_t num_ranks = r.get_varint();
  if (num_ranks == 0 || num_ranks > 1'000'000) {
    throw Error("binary trace: implausible rank count");
  }
  if (mips <= 0.0) throw Error("binary trace: invalid MIPS rate");
  const std::uint64_t app_len = r.get_varint();
  if (app_len > 4096) throw Error("binary trace: implausible app name");
  Trace trace = Trace::make(static_cast<std::int32_t>(num_ranks), mips,
                            r.get_string(app_len));

  for (auto& stream : trace.ranks) {
    const std::uint64_t count = r.get_varint();
    if (count > (std::uint64_t{1} << 40)) {
      throw Error("binary trace: implausible record count");
    }
    stream.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::uint8_t kind = r.get_byte();
      switch (kind) {
        case kKindCpu:
          stream.push_back(CpuBurst{r.get_varint()});
          break;
        case kKindSend: {
          Send send;
          send.dest = static_cast<Rank>(r.get_svarint());
          send.tag = r.get_svarint();
          send.bytes = r.get_varint();
          const std::uint8_t flags = r.get_byte();
          send.immediate = (flags & kFlagImmediate) != 0;
          send.synchronous = (flags & kFlagSynchronous) != 0;
          send.request = r.get_svarint();
          stream.push_back(send);
          break;
        }
        case kKindRecv: {
          Recv recv;
          recv.src = static_cast<Rank>(r.get_svarint());
          recv.tag = r.get_svarint();
          recv.bytes = r.get_varint();
          recv.immediate = (r.get_byte() & kFlagImmediate) != 0;
          recv.request = r.get_svarint();
          stream.push_back(recv);
          break;
        }
        case kKindWait: {
          const std::uint64_t n = r.get_varint();
          if (n == 0 || n > 1'000'000) {
            throw Error("binary trace: implausible wait size");
          }
          Wait wait;
          wait.requests.reserve(n);
          for (std::uint64_t k = 0; k < n; ++k) {
            wait.requests.push_back(r.get_svarint());
          }
          stream.push_back(std::move(wait));
          break;
        }
        case kKindGlobal: {
          GlobalOp op;
          const std::uint8_t coll = r.get_byte();
          if (coll > static_cast<std::uint8_t>(CollectiveKind::kScan)) {
            throw Error("binary trace: unknown collective kind");
          }
          op.kind = static_cast<CollectiveKind>(coll);
          op.root = static_cast<Rank>(r.get_svarint());
          op.bytes = r.get_varint();
          op.sequence = r.get_svarint();
          stream.push_back(op);
          break;
        }
        default:
          throw Error(strprintf("binary trace: unknown record kind %u",
                                static_cast<unsigned>(kind)));
      }
    }
  }
  return trace;
}

Trace read_binary_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open binary trace file: " + path);
  return read_binary(in);
}

Trace read_any_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open trace file: " + path);
  char magic[8] = {};
  in.read(magic, sizeof(magic));
  in.clear();
  in.seekg(0);
  if (in.gcount() == sizeof(magic) &&
      std::memcmp(magic, kMagic, sizeof(kMagic)) == 0) {
    return read_binary(in);
  }
  return read_text(in);
}

}  // namespace osim::trace
