// Dimemas-style trace records.
//
// A replayable trace is, per rank, a linear sequence of records:
//   CpuBurst  — computation of N instructions (converted to seconds at
//               replay time via the trace's MIPS rate and the platform's
//               relative CPU speed)
//   Send      — point-to-point transmission (blocking or immediate)
//   Recv      — point-to-point reception (blocking or immediate)
//   Wait      — completion point for one or more immediate requests
//   GlobalOp  — collective operation (decomposed into point-to-point
//               transfers at replay time; the paper: "collective
//               communication operations are performed in Dimemas without
//               assuming any collective hardware support")
//
// Tags are 64-bit because the overlap transformation derives unique chunk
// tags from (original tag, per-pair message sequence, chunk index).
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace osim::trace {

using Rank = std::int32_t;
using Tag = std::int64_t;
using ReqId = std::int64_t;

inline constexpr Rank kAnyRank = -1;
inline constexpr Tag kAnyTag = -1;
inline constexpr ReqId kNoRequest = -1;

struct CpuBurst {
  std::uint64_t instructions = 0;
};

struct Send {
  Rank dest = 0;
  Tag tag = 0;
  std::uint64_t bytes = 0;
  bool immediate = false;       // true: isend — returns without completing
  ReqId request = kNoRequest;   // valid when immediate
  /// Forces the rendezvous protocol regardless of message size. Used to
  /// model executions without double buffering: the transfer cannot start
  /// until the receiver has posted the matching receive.
  bool synchronous = false;
};

struct Recv {
  Rank src = 0;  // may be kAnyRank
  Tag tag = 0;   // may be kAnyTag
  std::uint64_t bytes = 0;
  bool immediate = false;       // true: irecv
  ReqId request = kNoRequest;   // valid when immediate
};

struct Wait {
  std::vector<ReqId> requests;  // completes all listed requests
};

enum class CollectiveKind : std::uint8_t {
  kBarrier,
  kBcast,
  kReduce,
  kAllreduce,
  kGather,
  kAllgather,
  kScatter,
  kAlltoall,
  kScan,
};

const char* collective_name(CollectiveKind kind);

struct GlobalOp {
  CollectiveKind kind = CollectiveKind::kBarrier;
  Rank root = 0;                 // meaningful for rooted collectives
  std::uint64_t bytes = 0;       // per-rank payload (element count * size)
  std::int64_t sequence = 0;     // global-op ordinal, matches across ranks
};

using Record = std::variant<CpuBurst, Send, Recv, Wait, GlobalOp>;

/// Short human-readable form, used in error messages and golden tests.
std::string to_string(const Record& record);

}  // namespace osim::trace
