// The replayable trace: per-rank record streams plus the metadata the
// replay simulator needs (rank count, MIPS rate used to convert instruction
// counts into seconds — the paper's tracer "obtains time-stamps by scaling
// the number of executed instructions by the average MIPS rate").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/record.hpp"

namespace osim::trace {

struct Trace {
  std::int32_t num_ranks = 0;
  double mips = 1000.0;  // millions of instructions per second
  std::string app;       // application name (informational)
  std::vector<std::vector<Record>> ranks;

  /// Creates an empty trace with `num_ranks` empty record streams.
  static Trace make(std::int32_t num_ranks, double mips,
                    std::string app = "");

  /// Total number of records across all ranks.
  std::size_t total_records() const;

  /// Sum of CpuBurst instructions on `rank`.
  std::uint64_t total_instructions(Rank rank) const;

  /// Total bytes sent from `rank` via point-to-point records.
  std::uint64_t total_p2p_bytes_sent(Rank rank) const;
};

/// Structural validation: every referenced rank exists, waits reference
/// requests that were previously issued and not yet completed, request ids
/// are unique per rank, and sends/recvs match pairwise per (src, dest, tag)
/// in count and size. Throws osim::Error describing the first problem.
void validate(const Trace& trace);

/// Fluent builder used by tests and by the overlap transformation to
/// assemble per-rank record streams.
class TraceBuilder {
 public:
  TraceBuilder(std::int32_t num_ranks, double mips, std::string app = "");

  TraceBuilder& compute(Rank rank, std::uint64_t instructions);
  TraceBuilder& send(Rank rank, Rank dest, Tag tag, std::uint64_t bytes);
  TraceBuilder& isend(Rank rank, Rank dest, Tag tag, std::uint64_t bytes,
                      ReqId request);
  TraceBuilder& recv(Rank rank, Rank src, Tag tag, std::uint64_t bytes);
  TraceBuilder& irecv(Rank rank, Rank src, Tag tag, std::uint64_t bytes,
                      ReqId request);
  TraceBuilder& wait(Rank rank, std::vector<ReqId> requests);
  TraceBuilder& global(Rank rank, CollectiveKind kind, Rank root,
                       std::uint64_t bytes, std::int64_t sequence);

  Trace build() &&;
  const Trace& peek() const { return trace_; }

 private:
  std::vector<Record>& stream(Rank rank);
  Trace trace_;
};

}  // namespace osim::trace
