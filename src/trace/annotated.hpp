// The annotated trace: the intermediate representation produced by the
// tracer (the role Valgrind's tool plays in the paper) and consumed by the
// overlap transformation.
//
// Per rank it is a linear sequence of MPI events, each stamped with the
// rank's *virtual clock* (executed instructions) at the moment of the call.
// Computation bursts are implicit: the burst between event k and event k+1
// lasts `events[k+1].vclock - events[k].vclock` instructions (MPI calls
// themselves consume no virtual time).
//
// On top of the plain event stream, send events carry per-element
// *production* annotations (virtual time of the last store to each element
// since the previous send of the same buffer — "the tool ... maintains the
// time of the last update for every chunk") and recv events carry
// per-element *consumption* annotations (virtual time of the first load of
// each element after the receive — "the tool guarantees that the wait for
// each incoming chunk is at the point where that chunk is needed for the
// first time").
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "trace/record.hpp"

namespace osim::trace {

/// Sentinel for "element never stored during the production interval"
/// (send at interval start) / "element never loaded during the consumption
/// interval" (wait can be postponed to the interval end).
inline constexpr std::uint64_t kNeverAccessed =
    std::numeric_limits<std::uint64_t>::max();

struct AnnEvent {
  enum class Kind : std::uint8_t {
    kSend,      // blocking send
    kIsend,     // immediate send; completed by a later kWait
    kRecv,      // blocking recv
    kIrecv,     // immediate recv; completed by a later kWait
    kWait,      // completion of app-level immediate requests
    kGlobalOp,  // collective
  };

  Kind kind = Kind::kSend;
  std::uint64_t vclock = 0;  // virtual instructions at the call

  // --- point-to-point fields -------------------------------------------
  Rank peer = -1;            // dest for sends, src for recvs
  Tag tag = 0;
  std::uint64_t bytes = 0;
  std::uint32_t elem_bytes = 1;   // size of one data element
  std::int64_t buffer_id = -1;    // tracked-buffer identity; -1 = untracked
  ReqId request = kNoRequest;     // kIsend / kIrecv

  // kWait: the app-level requests this wait completes.
  std::vector<ReqId> wait_requests;

  /// True when the overlap transformation may chunk this transfer: the
  /// buffer is tracked, has more than one element, and matching is
  /// deterministic (no wildcards). Alya's one-element reductions are the
  /// paper's canonical non-chunkable case.
  bool chunkable = false;

  // --- production annotations (kSend / kIsend) -------------------------
  /// Virtual clock of the production-interval start: the previous send of
  /// the same buffer, or the moment the buffer was registered.
  std::uint64_t interval_start = 0;
  /// Per element: virtual clock of the last store inside the production
  /// interval; kNeverAccessed when the element was not written.
  std::vector<std::uint64_t> elem_last_store;

  // --- consumption annotations (kRecv / kIrecv) -------------------------
  /// Virtual clock of the consumption-interval end: the next recv of the
  /// same buffer, or the rank's final clock.
  std::uint64_t interval_end = 0;
  /// Per element: virtual clock of the first load inside the consumption
  /// interval; kNeverAccessed when the element was not read.
  std::vector<std::uint64_t> elem_first_load;
  /// For kIrecv: index (into the same rank's event vector) of the kWait
  /// event that completes this request; -1 when unknown.
  std::int64_t wait_event_index = -1;

  // --- collective fields (kGlobalOp) ------------------------------------
  CollectiveKind coll = CollectiveKind::kBarrier;
  Rank root = 0;
  std::int64_t coll_sequence = 0;
};

struct AnnotatedRank {
  std::vector<AnnEvent> events;
  /// Virtual clock at the end of the run (captures the tail compute burst
  /// after the last MPI event).
  std::uint64_t final_vclock = 0;
};

struct AnnotatedTrace {
  std::int32_t num_ranks = 0;
  double mips = 1000.0;
  std::string app;
  std::vector<AnnotatedRank> ranks;

  static AnnotatedTrace make(std::int32_t num_ranks, double mips,
                             std::string app = "");
};

/// Structural validation of an annotated trace: vclocks are nondecreasing
/// within each rank, annotation vectors have `bytes / elem_bytes` entries,
/// production times lie within [interval_start, vclock], consumption times
/// within [vclock, interval_end]. Throws osim::Error on the first problem.
void validate(const AnnotatedTrace& trace);

}  // namespace osim::trace
