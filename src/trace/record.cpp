#include "trace/record.hpp"

#include <sstream>

#include "common/expect.hpp"

namespace osim::trace {

const char* collective_name(CollectiveKind kind) {
  switch (kind) {
    case CollectiveKind::kBarrier:
      return "barrier";
    case CollectiveKind::kBcast:
      return "bcast";
    case CollectiveKind::kReduce:
      return "reduce";
    case CollectiveKind::kAllreduce:
      return "allreduce";
    case CollectiveKind::kGather:
      return "gather";
    case CollectiveKind::kAllgather:
      return "allgather";
    case CollectiveKind::kScatter:
      return "scatter";
    case CollectiveKind::kAlltoall:
      return "alltoall";
    case CollectiveKind::kScan:
      return "scan";
  }
  OSIM_UNREACHABLE("bad CollectiveKind");
}

std::string to_string(const Record& record) {
  std::ostringstream os;
  std::visit(
      [&os](const auto& rec) {
        using T = std::decay_t<decltype(rec)>;
        if constexpr (std::is_same_v<T, CpuBurst>) {
          os << "compute(" << rec.instructions << ")";
        } else if constexpr (std::is_same_v<T, Send>) {
          os << (rec.immediate ? "isend" : "send")
             << (rec.synchronous ? "!" : "") << "(dest=" << rec.dest
             << ", tag=" << rec.tag << ", bytes=" << rec.bytes;
          if (rec.immediate) os << ", req=" << rec.request;
          os << ")";
        } else if constexpr (std::is_same_v<T, Recv>) {
          os << (rec.immediate ? "irecv" : "recv") << "(src=" << rec.src
             << ", tag=" << rec.tag << ", bytes=" << rec.bytes;
          if (rec.immediate) os << ", req=" << rec.request;
          os << ")";
        } else if constexpr (std::is_same_v<T, Wait>) {
          os << "wait(";
          for (std::size_t i = 0; i < rec.requests.size(); ++i) {
            if (i != 0) os << ", ";
            os << rec.requests[i];
          }
          os << ")";
        } else if constexpr (std::is_same_v<T, GlobalOp>) {
          os << collective_name(rec.kind) << "(root=" << rec.root
             << ", bytes=" << rec.bytes << ", seq=" << rec.sequence << ")";
        }
      },
      record);
  return os.str();
}

}  // namespace osim::trace
