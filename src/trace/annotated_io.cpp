#include "trace/annotated_io.hpp"

#include <fstream>
#include <optional>
#include <sstream>

#include "common/expect.hpp"
#include "common/strings.hpp"

namespace osim::trace {

namespace {

constexpr const char* kHeader = "#OSIM-ANNTRACE v1";

void write_times(std::ostream& out,
                 const std::vector<std::uint64_t>& times) {
  for (const std::uint64_t t : times) {
    if (t == kNeverAccessed) {
      out << " -";
    } else {
      out << ' ' << t;
    }
  }
}

std::optional<CollectiveKind> collective_from_name(std::string_view name) {
  static constexpr CollectiveKind kAll[] = {
      CollectiveKind::kBarrier,  CollectiveKind::kBcast,
      CollectiveKind::kReduce,   CollectiveKind::kAllreduce,
      CollectiveKind::kGather,   CollectiveKind::kAllgather,
      CollectiveKind::kScatter,  CollectiveKind::kAlltoall,
      CollectiveKind::kScan,
  };
  for (const CollectiveKind kind : kAll) {
    if (name == collective_name(kind)) return kind;
  }
  return std::nullopt;
}

}  // namespace

void write_annotated(const AnnotatedTrace& trace, std::ostream& out) {
  out << kHeader << "\n";
  out << "meta app " << (trace.app.empty() ? "-" : trace.app) << "\n";
  out << "meta ranks " << trace.num_ranks << "\n";
  out << "meta mips " << strprintf("%.17g", trace.mips) << "\n";
  for (Rank rank = 0; rank < trace.num_ranks; ++rank) {
    const AnnotatedRank& arank = trace.ranks[static_cast<std::size_t>(rank)];
    out << "rank " << rank << " final " << arank.final_vclock << "\n";
    for (const AnnEvent& ev : arank.events) {
      switch (ev.kind) {
        case AnnEvent::Kind::kSend:
        case AnnEvent::Kind::kIsend:
          if (ev.kind == AnnEvent::Kind::kIsend) {
            out << "is " << ev.vclock << ' ' << ev.request;
          } else {
            out << "s " << ev.vclock;
          }
          out << ' ' << ev.peer << ' ' << ev.tag << ' ' << ev.elem_bytes
              << ' ' << ev.bytes / ev.elem_bytes << ' ' << ev.buffer_id
              << ' ' << (ev.chunkable ? 1 : 0) << ' ' << ev.interval_start;
          write_times(out, ev.elem_last_store);
          out << "\n";
          break;
        case AnnEvent::Kind::kRecv:
        case AnnEvent::Kind::kIrecv:
          if (ev.kind == AnnEvent::Kind::kIrecv) {
            out << "ir " << ev.vclock << ' ' << ev.request;
          } else {
            out << "r " << ev.vclock;
          }
          out << ' ' << ev.peer << ' ' << ev.tag << ' ' << ev.elem_bytes
              << ' ' << ev.bytes / ev.elem_bytes << ' ' << ev.buffer_id
              << ' ' << (ev.chunkable ? 1 : 0) << ' ' << ev.interval_end
              << ' ' << ev.wait_event_index;
          write_times(out, ev.elem_first_load);
          out << "\n";
          break;
        case AnnEvent::Kind::kWait:
          out << "w " << ev.vclock;
          for (const ReqId req : ev.wait_requests) out << ' ' << req;
          out << "\n";
          break;
        case AnnEvent::Kind::kGlobalOp:
          out << "g " << ev.vclock << ' ' << collective_name(ev.coll) << ' '
              << ev.root << ' ' << ev.bytes << ' ' << ev.coll_sequence
              << "\n";
          break;
      }
    }
  }
}

std::string write_annotated(const AnnotatedTrace& trace) {
  std::ostringstream os;
  write_annotated(trace, os);
  return os.str();
}

void write_annotated_file(const AnnotatedTrace& trace,
                          const std::string& path) {
  std::ofstream out(path);
  if (!out) throw Error("cannot open annotated trace file: " + path);
  write_annotated(trace, out);
  if (!out) throw Error("error writing annotated trace file: " + path);
}

namespace {

class Parser {
 public:
  explicit Parser(std::istream& in) : in_(in) {}

  AnnotatedTrace parse() {
    expect_header();
    parse_meta();
    AnnotatedTrace trace = AnnotatedTrace::make(ranks_, mips_, app_);
    Rank current = -1;
    std::string line;
    while (next_line(line)) {
      const auto tokens = split_ws(line);
      if (tokens.empty()) continue;
      const std::string& op = tokens[0];
      if (op == "rank") {
        require_min(tokens, 4);
        if (tokens[2] != "final") fail("expected 'rank N final CLOCK'");
        current = to_i<Rank>(tokens[1]);
        if (current < 0 || current >= ranks_) fail("rank out of range");
        trace.ranks[static_cast<std::size_t>(current)].final_vclock =
            to_u64(tokens[3]);
        continue;
      }
      if (current < 0) fail("event before any 'rank' directive");
      auto& events =
          trace.ranks[static_cast<std::size_t>(current)].events;

      AnnEvent ev;
      std::size_t i = 1;
      if (op == "s" || op == "is") {
        ev.kind = op == "is" ? AnnEvent::Kind::kIsend : AnnEvent::Kind::kSend;
        ev.vclock = to_u64(field(tokens, i++));
        if (op == "is") ev.request = to_i<ReqId>(field(tokens, i++));
        ev.peer = to_i<Rank>(field(tokens, i++));
        ev.tag = to_i<Tag>(field(tokens, i++));
        ev.elem_bytes = to_i<std::uint32_t>(field(tokens, i++));
        const std::uint64_t nelems = to_u64(field(tokens, i++));
        ev.bytes = nelems * ev.elem_bytes;
        ev.buffer_id = to_i<std::int64_t>(field(tokens, i++));
        ev.chunkable = to_u64(field(tokens, i++)) != 0;
        ev.interval_start = to_u64(field(tokens, i++));
        read_times(tokens, i, nelems, &ev.elem_last_store);
      } else if (op == "r" || op == "ir") {
        ev.kind =
            op == "ir" ? AnnEvent::Kind::kIrecv : AnnEvent::Kind::kRecv;
        ev.vclock = to_u64(field(tokens, i++));
        if (op == "ir") ev.request = to_i<ReqId>(field(tokens, i++));
        ev.peer = to_i<Rank>(field(tokens, i++));
        ev.tag = to_i<Tag>(field(tokens, i++));
        ev.elem_bytes = to_i<std::uint32_t>(field(tokens, i++));
        const std::uint64_t nelems = to_u64(field(tokens, i++));
        ev.bytes = nelems * ev.elem_bytes;
        ev.buffer_id = to_i<std::int64_t>(field(tokens, i++));
        ev.chunkable = to_u64(field(tokens, i++)) != 0;
        ev.interval_end = to_u64(field(tokens, i++));
        ev.wait_event_index = to_i<std::int64_t>(field(tokens, i++));
        read_times(tokens, i, nelems, &ev.elem_first_load);
      } else if (op == "w") {
        ev.kind = AnnEvent::Kind::kWait;
        ev.vclock = to_u64(field(tokens, i++));
        while (i < tokens.size()) {
          ev.wait_requests.push_back(to_i<ReqId>(tokens[i++]));
        }
        if (ev.wait_requests.empty()) fail("wait with no requests");
      } else if (op == "g") {
        ev.kind = AnnEvent::Kind::kGlobalOp;
        ev.vclock = to_u64(field(tokens, i++));
        const auto kind = collective_from_name(field(tokens, i++));
        if (!kind) fail("unknown collective");
        ev.coll = *kind;
        ev.root = to_i<Rank>(field(tokens, i++));
        ev.bytes = to_u64(field(tokens, i++));
        ev.coll_sequence = to_i<std::int64_t>(field(tokens, i++));
      } else {
        fail("unknown event type '" + op + "'");
      }
      events.push_back(std::move(ev));
    }
    validate(trace);
    return trace;
  }

 private:
  void read_times(const std::vector<std::string>& tokens, std::size_t from,
                  std::uint64_t nelems, std::vector<std::uint64_t>* out) {
    if (from >= tokens.size()) return;  // untracked: no trailer
    if (tokens.size() - from != nelems) {
      fail(strprintf("expected %llu per-element times, got %zu",
                     static_cast<unsigned long long>(nelems),
                     tokens.size() - from));
    }
    out->reserve(nelems);
    for (std::size_t i = from; i < tokens.size(); ++i) {
      out->push_back(tokens[i] == "-" ? kNeverAccessed : to_u64(tokens[i]));
    }
  }

  bool next_line(std::string& line) {
    while (std::getline(in_, line)) {
      ++line_number_;
      const auto hash = line.find('#');
      if (hash != std::string::npos) line.resize(hash);
      if (!trim(line).empty()) return true;
    }
    return false;
  }

  void expect_header() {
    std::string line;
    if (!std::getline(in_, line)) fail("empty annotated trace file");
    ++line_number_;
    if (trim(line) != kHeader) fail("missing '#OSIM-ANNTRACE v1' header");
  }

  void parse_meta() {
    std::string line;
    while (in_.peek() != EOF) {
      const auto pos = in_.tellg();
      if (!next_line(line)) break;
      const auto tokens = split_ws(line);
      if (tokens.empty()) continue;
      if (tokens[0] != "meta") {
        in_.seekg(pos);
        --line_number_;
        break;
      }
      require_min(tokens, 3);
      if (tokens[1] == "app") {
        app_ = tokens[2] == "-" ? "" : tokens[2];
      } else if (tokens[1] == "ranks") {
        ranks_ = to_i<Rank>(tokens[2]);
        if (ranks_ <= 0) fail("ranks must be positive");
      } else if (tokens[1] == "mips") {
        const auto parsed = parse_f64(tokens[2]);
        if (!parsed || *parsed <= 0.0) fail("bad mips value");
        mips_ = *parsed;
      } else {
        fail("unknown meta key '" + tokens[1] + "'");
      }
    }
    if (ranks_ <= 0) fail("annotated trace missing 'meta ranks'");
  }

  const std::string& field(const std::vector<std::string>& tokens,
                           std::size_t index) {
    if (index >= tokens.size()) fail("missing field");
    return tokens[index];
  }

  void require_min(const std::vector<std::string>& tokens,
                   std::size_t count) {
    if (tokens.size() < count) fail("too few fields");
  }

  template <typename T>
  T to_i(const std::string& text) {
    const auto parsed = parse_i64(text);
    if (!parsed) fail("bad integer '" + text + "'");
    return static_cast<T>(*parsed);
  }

  std::uint64_t to_u64(const std::string& text) {
    const auto parsed = parse_u64(text);
    if (!parsed) fail("bad unsigned integer '" + text + "'");
    return *parsed;
  }

  [[noreturn]] void fail(const std::string& why) {
    throw Error(strprintf("annotated trace parse error at line %d: %s",
                          line_number_, why.c_str()));
  }

  std::istream& in_;
  int line_number_ = 0;
  Rank ranks_ = 0;
  double mips_ = 1000.0;
  std::string app_;
};

}  // namespace

AnnotatedTrace read_annotated(std::istream& in) { return Parser(in).parse(); }

AnnotatedTrace read_annotated(const std::string& text) {
  std::istringstream is(text);
  return read_annotated(is);
}

AnnotatedTrace read_annotated_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open annotated trace file: " + path);
  return read_annotated(in);
}

}  // namespace osim::trace
