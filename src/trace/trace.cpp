#include "trace/trace.hpp"

#include <map>
#include <set>
#include <tuple>

#include "common/expect.hpp"
#include "common/strings.hpp"

namespace osim::trace {

Trace Trace::make(std::int32_t num_ranks, double mips, std::string app) {
  OSIM_CHECK(num_ranks > 0);
  OSIM_CHECK(mips > 0.0);
  Trace t;
  t.num_ranks = num_ranks;
  t.mips = mips;
  t.app = std::move(app);
  t.ranks.resize(static_cast<std::size_t>(num_ranks));
  return t;
}

std::size_t Trace::total_records() const {
  std::size_t n = 0;
  for (const auto& stream : ranks) n += stream.size();
  return n;
}

std::uint64_t Trace::total_instructions(Rank rank) const {
  OSIM_CHECK(rank >= 0 && rank < num_ranks);
  std::uint64_t total = 0;
  for (const auto& rec : ranks[static_cast<std::size_t>(rank)]) {
    if (const auto* burst = std::get_if<CpuBurst>(&rec)) {
      total += burst->instructions;
    }
  }
  return total;
}

std::uint64_t Trace::total_p2p_bytes_sent(Rank rank) const {
  OSIM_CHECK(rank >= 0 && rank < num_ranks);
  std::uint64_t total = 0;
  for (const auto& rec : ranks[static_cast<std::size_t>(rank)]) {
    if (const auto* send = std::get_if<Send>(&rec)) total += send->bytes;
  }
  return total;
}

namespace {

[[noreturn]] void fail(Rank rank, std::size_t index, const Record& rec,
                       const std::string& why) {
  throw Error(strprintf("trace validation: rank %d record %zu [%s]: %s",
                        rank, index, to_string(rec).c_str(), why.c_str()));
}

}  // namespace

void validate(const Trace& trace) {
  if (trace.num_ranks <= 0) throw Error("trace has no ranks");
  if (trace.ranks.size() != static_cast<std::size_t>(trace.num_ranks)) {
    throw Error("trace rank-stream count does not match num_ranks");
  }
  if (trace.mips <= 0.0) throw Error("trace MIPS rate must be positive");

  // (src, dest, tag) -> queue of pending byte counts, for pairwise matching.
  std::map<std::tuple<Rank, Rank, Tag>, std::vector<std::uint64_t>> sends;
  std::map<std::tuple<Rank, Rank, Tag>, std::vector<std::uint64_t>> recvs;
  bool has_wildcard = false;

  for (Rank rank = 0; rank < trace.num_ranks; ++rank) {
    std::set<ReqId> open_requests;
    std::set<ReqId> used_requests;
    const auto& stream = trace.ranks[static_cast<std::size_t>(rank)];
    for (std::size_t i = 0; i < stream.size(); ++i) {
      const Record& rec = stream[i];
      if (const auto* send = std::get_if<Send>(&rec)) {
        if (send->dest < 0 || send->dest >= trace.num_ranks)
          fail(rank, i, rec, "destination rank out of range");
        if (send->dest == rank) fail(rank, i, rec, "self-send");
        if (send->immediate) {
          if (send->request == kNoRequest)
            fail(rank, i, rec, "immediate send without request id");
          if (!used_requests.insert(send->request).second)
            fail(rank, i, rec, "request id reused");
          open_requests.insert(send->request);
        }
        sends[{rank, send->dest, send->tag}].push_back(send->bytes);
      } else if (const auto* recv = std::get_if<Recv>(&rec)) {
        if (recv->src != kAnyRank &&
            (recv->src < 0 || recv->src >= trace.num_ranks))
          fail(rank, i, rec, "source rank out of range");
        if (recv->src == rank) fail(rank, i, rec, "self-receive");
        if (recv->immediate) {
          if (recv->request == kNoRequest)
            fail(rank, i, rec, "immediate recv without request id");
          if (!used_requests.insert(recv->request).second)
            fail(rank, i, rec, "request id reused");
          open_requests.insert(recv->request);
        }
        if (recv->src == kAnyRank || recv->tag == kAnyTag) {
          has_wildcard = true;
        } else {
          recvs[{recv->src, rank, recv->tag}].push_back(recv->bytes);
        }
      } else if (const auto* wait = std::get_if<Wait>(&rec)) {
        if (wait->requests.empty())
          fail(rank, i, rec, "wait on empty request list");
        for (const ReqId req : wait->requests) {
          if (open_requests.erase(req) == 0)
            fail(rank, i, rec,
                 strprintf("wait on unknown or completed request %lld",
                           static_cast<long long>(req)));
        }
      }
      // CpuBurst and GlobalOp have no per-record structural constraints
      // beyond types; GlobalOp cross-rank agreement is checked below.
    }
    if (!open_requests.empty()) {
      throw Error(strprintf(
          "trace validation: rank %d finishes with %zu uncompleted requests",
          rank, open_requests.size()));
    }
  }

  // Pairwise matching of point-to-point traffic (skipped when wildcards are
  // present — matching is then execution-order dependent).
  if (!has_wildcard) {
    for (const auto& [key, send_sizes] : sends) {
      const auto it = recvs.find(key);
      const std::size_t nrecv = it == recvs.end() ? 0 : it->second.size();
      if (nrecv != send_sizes.size()) {
        throw Error(strprintf(
            "trace validation: %zu sends but %zu recvs for src=%d dest=%d "
            "tag=%lld",
            send_sizes.size(), nrecv, std::get<0>(key), std::get<1>(key),
            static_cast<long long>(std::get<2>(key))));
      }
      for (std::size_t i = 0; i < send_sizes.size(); ++i) {
        if (send_sizes[i] != it->second[i]) {
          throw Error(strprintf(
              "trace validation: size mismatch (%llu vs %llu bytes) on "
              "message %zu of src=%d dest=%d tag=%lld",
              static_cast<unsigned long long>(send_sizes[i]),
              static_cast<unsigned long long>(it->second[i]), i,
              std::get<0>(key), std::get<1>(key),
              static_cast<long long>(std::get<2>(key))));
        }
      }
    }
    for (const auto& [key, recv_sizes] : recvs) {
      if (sends.find(key) == sends.end()) {
        throw Error(strprintf(
            "trace validation: %zu recvs with no matching send for src=%d "
            "dest=%d tag=%lld",
            recv_sizes.size(), std::get<0>(key), std::get<1>(key),
            static_cast<long long>(std::get<2>(key))));
      }
    }
  }

  // Global ops: every rank must see the same sequence of (kind, root, seq).
  std::vector<std::vector<GlobalOp>> per_rank_ops(
      static_cast<std::size_t>(trace.num_ranks));
  for (Rank rank = 0; rank < trace.num_ranks; ++rank) {
    for (const auto& rec : trace.ranks[static_cast<std::size_t>(rank)]) {
      if (const auto* op = std::get_if<GlobalOp>(&rec)) {
        per_rank_ops[static_cast<std::size_t>(rank)].push_back(*op);
      }
    }
  }
  for (Rank rank = 1; rank < trace.num_ranks; ++rank) {
    const auto& a = per_rank_ops[0];
    const auto& b = per_rank_ops[static_cast<std::size_t>(rank)];
    if (a.size() != b.size()) {
      throw Error(strprintf(
          "trace validation: rank 0 has %zu global ops but rank %d has %zu",
          a.size(), rank, b.size()));
    }
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i].kind != b[i].kind || a[i].root != b[i].root ||
          a[i].sequence != b[i].sequence) {
        throw Error(strprintf(
            "trace validation: global op %zu disagrees between rank 0 (%s) "
            "and rank %d (%s)",
            i, collective_name(a[i].kind), rank, collective_name(b[i].kind)));
      }
    }
  }
}

TraceBuilder::TraceBuilder(std::int32_t num_ranks, double mips,
                           std::string app)
    : trace_(Trace::make(num_ranks, mips, std::move(app))) {}

std::vector<Record>& TraceBuilder::stream(Rank rank) {
  OSIM_CHECK(rank >= 0 && rank < trace_.num_ranks);
  return trace_.ranks[static_cast<std::size_t>(rank)];
}

TraceBuilder& TraceBuilder::compute(Rank rank, std::uint64_t instructions) {
  if (instructions > 0) stream(rank).push_back(CpuBurst{instructions});
  return *this;
}

TraceBuilder& TraceBuilder::send(Rank rank, Rank dest, Tag tag,
                                 std::uint64_t bytes) {
  stream(rank).push_back(Send{dest, tag, bytes, false, kNoRequest});
  return *this;
}

TraceBuilder& TraceBuilder::isend(Rank rank, Rank dest, Tag tag,
                                  std::uint64_t bytes, ReqId request) {
  stream(rank).push_back(Send{dest, tag, bytes, true, request});
  return *this;
}

TraceBuilder& TraceBuilder::recv(Rank rank, Rank src, Tag tag,
                                 std::uint64_t bytes) {
  stream(rank).push_back(Recv{src, tag, bytes, false, kNoRequest});
  return *this;
}

TraceBuilder& TraceBuilder::irecv(Rank rank, Rank src, Tag tag,
                                  std::uint64_t bytes, ReqId request) {
  stream(rank).push_back(Recv{src, tag, bytes, true, request});
  return *this;
}

TraceBuilder& TraceBuilder::wait(Rank rank, std::vector<ReqId> requests) {
  stream(rank).push_back(Wait{std::move(requests)});
  return *this;
}

TraceBuilder& TraceBuilder::global(Rank rank, CollectiveKind kind, Rank root,
                                   std::uint64_t bytes,
                                   std::int64_t sequence) {
  stream(rank).push_back(GlobalOp{kind, root, bytes, sequence});
  return *this;
}

Trace TraceBuilder::build() && { return std::move(trace_); }

}  // namespace osim::trace
