#include "trace/io.hpp"

#include <fstream>
#include <optional>
#include <sstream>

#include "common/expect.hpp"
#include "common/strings.hpp"

namespace osim::trace {

namespace {

constexpr const char* kHeader = "#OSIM-TRACE v1";

std::optional<CollectiveKind> collective_from_name(std::string_view name) {
  static constexpr CollectiveKind kAll[] = {
      CollectiveKind::kBarrier,  CollectiveKind::kBcast,
      CollectiveKind::kReduce,   CollectiveKind::kAllreduce,
      CollectiveKind::kGather,   CollectiveKind::kAllgather,
      CollectiveKind::kScatter,  CollectiveKind::kAlltoall,
      CollectiveKind::kScan,
  };
  for (const CollectiveKind kind : kAll) {
    if (name == collective_name(kind)) return kind;
  }
  return std::nullopt;
}

}  // namespace

void write_text(const Trace& trace, std::ostream& out) {
  out << kHeader << "\n";
  out << "meta app " << (trace.app.empty() ? "-" : trace.app) << "\n";
  out << "meta ranks " << trace.num_ranks << "\n";
  out << "meta mips " << strprintf("%.17g", trace.mips) << "\n";
  for (Rank rank = 0; rank < trace.num_ranks; ++rank) {
    out << "rank " << rank << "\n";
    for (const Record& rec : trace.ranks[static_cast<std::size_t>(rank)]) {
      std::visit(
          [&out](const auto& r) {
            using T = std::decay_t<decltype(r)>;
            if constexpr (std::is_same_v<T, CpuBurst>) {
              out << "c " << r.instructions << "\n";
            } else if constexpr (std::is_same_v<T, Send>) {
              const char* sync = r.synchronous ? "!" : "";
              if (r.immediate) {
                out << "is" << sync << ' ' << r.dest << ' ' << r.tag << ' '
                    << r.bytes << ' ' << r.request << "\n";
              } else {
                out << "s" << sync << ' ' << r.dest << ' ' << r.tag << ' '
                    << r.bytes << "\n";
              }
            } else if constexpr (std::is_same_v<T, Recv>) {
              if (r.immediate) {
                out << "ir " << r.src << ' ' << r.tag << ' ' << r.bytes << ' '
                    << r.request << "\n";
              } else {
                out << "r " << r.src << ' ' << r.tag << ' ' << r.bytes
                    << "\n";
              }
            } else if constexpr (std::is_same_v<T, Wait>) {
              out << "w";
              for (const ReqId req : r.requests) out << ' ' << req;
              out << "\n";
            } else if constexpr (std::is_same_v<T, GlobalOp>) {
              out << "g " << collective_name(r.kind) << ' ' << r.root << ' '
                  << r.bytes << ' ' << r.sequence << "\n";
            }
          },
          rec);
    }
  }
}

std::string write_text(const Trace& trace) {
  std::ostringstream os;
  write_text(trace, os);
  return os.str();
}

void write_text_file(const Trace& trace, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw Error("cannot open trace output file: " + path);
  write_text(trace, out);
  if (!out) throw Error("error writing trace file: " + path);
}

namespace {

class Parser {
 public:
  explicit Parser(std::istream& in) : in_(in) {}

  Trace parse() {
    expect_header();
    parse_meta();
    Trace trace = Trace::make(ranks_, mips_, app_);
    Rank current = -1;
    std::string line;
    while (next_line(line)) {
      const auto tokens = split_ws(line);
      if (tokens.empty()) continue;
      const std::string& op = tokens[0];
      if (op == "rank") {
        current = to_rank(field(tokens, 1));
        if (current < 0 || current >= ranks_) fail("rank out of range");
        continue;
      }
      if (current < 0) fail("record before any 'rank' directive");
      auto& stream = trace.ranks[static_cast<std::size_t>(current)];
      if (op == "c") {
        stream.push_back(CpuBurst{to_u64(field(tokens, 1))});
        require_arity(tokens, 2);
      } else if (op == "s" || op == "s!") {
        require_arity(tokens, 4);
        stream.push_back(Send{to_rank(tokens[1]), to_tag(tokens[2]),
                              to_u64(tokens[3]), false, kNoRequest,
                              op == "s!"});
      } else if (op == "is" || op == "is!") {
        require_arity(tokens, 5);
        stream.push_back(Send{to_rank(tokens[1]), to_tag(tokens[2]),
                              to_u64(tokens[3]), true, to_tag(tokens[4]),
                              op == "is!"});
      } else if (op == "r") {
        require_arity(tokens, 4);
        stream.push_back(Recv{to_rank(tokens[1]), to_tag(tokens[2]),
                              to_u64(tokens[3]), false, kNoRequest});
      } else if (op == "ir") {
        require_arity(tokens, 5);
        stream.push_back(Recv{to_rank(tokens[1]), to_tag(tokens[2]),
                              to_u64(tokens[3]), true, to_tag(tokens[4])});
      } else if (op == "w") {
        if (tokens.size() < 2) fail("wait needs at least one request id");
        Wait wait;
        for (std::size_t i = 1; i < tokens.size(); ++i) {
          wait.requests.push_back(to_tag(tokens[i]));
        }
        stream.push_back(std::move(wait));
      } else if (op == "g") {
        require_arity(tokens, 5);
        const auto kind = collective_from_name(tokens[1]);
        if (!kind) fail("unknown collective '" + tokens[1] + "'");
        stream.push_back(GlobalOp{*kind, to_rank(tokens[2]),
                                  to_u64(tokens[3]),
                                  static_cast<std::int64_t>(
                                      to_tag(tokens[4]))});
      } else {
        fail("unknown record type '" + op + "'");
      }
    }
    return trace;
  }

 private:
  bool next_line(std::string& line) {
    while (std::getline(in_, line)) {
      ++line_number_;
      const auto hash = line.find('#');
      if (hash != std::string::npos) line.resize(hash);
      if (!trim(line).empty()) return true;
    }
    return false;
  }

  void expect_header() {
    std::string line;
    if (!std::getline(in_, line)) fail("empty trace file");
    ++line_number_;
    if (trim(line) != kHeader) fail("missing '#OSIM-TRACE v1' header");
  }

  void parse_meta() {
    std::string line;
    // Meta lines must come as a contiguous block before the first rank.
    while (in_.peek() != EOF) {
      const auto pos = in_.tellg();
      if (!next_line(line)) break;
      const auto tokens = split_ws(line);
      if (tokens.empty()) continue;
      if (tokens[0] != "meta") {
        in_.seekg(pos);
        --line_number_;
        break;
      }
      require_arity(tokens, 3);
      if (tokens[1] == "app") {
        app_ = tokens[2] == "-" ? "" : tokens[2];
      } else if (tokens[1] == "ranks") {
        ranks_ = to_rank(tokens[2]);
        if (ranks_ <= 0) fail("ranks must be positive");
      } else if (tokens[1] == "mips") {
        const auto parsed = parse_f64(tokens[2]);
        if (!parsed || *parsed <= 0.0) fail("bad mips value");
        mips_ = *parsed;
      } else {
        fail("unknown meta key '" + tokens[1] + "'");
      }
    }
    if (ranks_ <= 0) fail("trace file missing 'meta ranks'");
  }

  const std::string& field(const std::vector<std::string>& tokens,
                           std::size_t index) {
    if (index >= tokens.size()) fail("missing field");
    return tokens[index];
  }

  void require_arity(const std::vector<std::string>& tokens,
                     std::size_t expected) {
    if (tokens.size() != expected) {
      fail(strprintf("expected %zu fields, got %zu", expected,
                     tokens.size()));
    }
  }

  Rank to_rank(const std::string& text) {
    const auto parsed = parse_i64(text);
    if (!parsed) fail("bad rank '" + text + "'");
    return static_cast<Rank>(*parsed);
  }

  Tag to_tag(const std::string& text) {
    const auto parsed = parse_i64(text);
    if (!parsed) fail("bad integer '" + text + "'");
    return *parsed;
  }

  std::uint64_t to_u64(const std::string& text) {
    const auto parsed = parse_u64(text);
    if (!parsed) fail("bad unsigned integer '" + text + "'");
    return *parsed;
  }

  [[noreturn]] void fail(const std::string& why) {
    throw Error(strprintf("trace parse error at line %d: %s", line_number_,
                          why.c_str()));
  }

  std::istream& in_;
  int line_number_ = 0;
  Rank ranks_ = 0;
  double mips_ = 1000.0;
  std::string app_;
};

}  // namespace

Trace read_text(std::istream& in) { return Parser(in).parse(); }

Trace read_text(const std::string& text) {
  std::istringstream is(text);
  return read_text(is);
}

Trace read_text_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open trace file: " + path);
  return read_text(in);
}

}  // namespace osim::trace
