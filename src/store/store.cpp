#include "store/store.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#ifndef _WIN32
#include <cerrno>
#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>
#endif

#include "common/crash_point.hpp"
#include "common/crc32.hpp"
#include "common/expect.hpp"
#include "common/strings.hpp"

namespace osim::store {

namespace fs = std::filesystem;

namespace {

constexpr std::string_view kIndexMagic = "OSIMIDX1";
constexpr std::uint32_t kIndexVersion = 1;
constexpr const char* kIndexName = "index.osim";
constexpr const char* kLockName = "lock";

/// RAII advisory lock on <root>/lock. flock() locks are per open file
/// description, so two threads of one process exclude each other exactly
/// like two processes do — each acquisition opens its own descriptor.
class FileLock {
 public:
  explicit FileLock(const fs::path& path) {
#ifndef _WIN32
    fd_ = ::open(path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
    if (fd_ >= 0) {
      while (::flock(fd_, LOCK_EX) != 0 && errno == EINTR) {
      }
    }
#else
    (void)path;  // single-process best effort on platforms without flock
#endif
  }
  ~FileLock() {
#ifndef _WIN32
    if (fd_ >= 0) ::close(fd_);  // releases the lock
#endif
  }
  FileLock(const FileLock&) = delete;
  FileLock& operator=(const FileLock&) = delete;

 private:
  int fd_ = -1;
};

std::optional<std::string> read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return std::nullopt;
  return std::move(buffer).str();
}

/// Publishes `bytes` at `path` via a unique temp file in `tmp_dir` and an
/// atomic rename, so concurrent readers see either the old object, the new
/// one, or nothing — never a torn write.
void write_file_atomic(const fs::path& path, const std::string& bytes,
                       const fs::path& tmp_dir) {
  static std::atomic<std::uint64_t> sequence{0};
  const fs::path tmp =
      tmp_dir / strprintf("%s.%ld.%llu.tmp", path.filename().c_str(),
#ifndef _WIN32
                          static_cast<long>(::getpid()),
#else
                          0L,
#endif
                          static_cast<unsigned long long>(
                              sequence.fetch_add(1)));
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw Error("store: cannot create " + tmp.string());
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      std::error_code ignored;
      fs::remove(tmp, ignored);
      throw Error("store: failed writing " + tmp.string());
    }
  }
  // Crash injection for durability tests: dying here leaves only an
  // orphaned tmp file (a reader sees a clean miss; the open-time sweep
  // reclaims it), dying after the rename leaves a complete object whose
  // index entry lags (the index is rebuilt from the tree).
  maybe_crash("store.publish.tmp");
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    std::error_code ignored;
    fs::remove(tmp, ignored);
    throw Error("store: cannot publish " + path.string() + ": " +
                ec.message());
  }
  maybe_crash("store.publish.renamed");
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

bool get_u32(std::string_view in, std::size_t& pos, std::uint32_t& v) {
  if (in.size() - pos < 4) return false;
  v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(in[pos + i]))
         << (8 * i);
  }
  pos += 4;
  return true;
}

bool get_u64(std::string_view in, std::size_t& pos, std::uint64_t& v) {
  if (in.size() - pos < 8) return false;
  v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(in[pos + i]))
         << (8 * i);
  }
  pos += 8;
  return true;
}

}  // namespace

// --- index (de)serialization -------------------------------------------------
//
// Layout mirrors the object format: magic "OSIMIDX1", u32 version,
// u64 clock, u64 entry count, entries (hi, lo, bytes, last_access, hits),
// u32 CRC over every byte after the magic. The index is a rebuildable
// summary, so a failed decode is repaired, not reported to callers.

struct IndexCodec {
  static std::string encode(std::uint64_t clock,
                            const std::vector<std::uint64_t>& flat) {
    // flat holds 5 u64 per entry: hi, lo, bytes, last_access, hits.
    std::string out;
    out.append(kIndexMagic);
    put_u32(out, kIndexVersion);
    put_u64(out, clock);
    put_u64(out, flat.size() / 5);
    for (const std::uint64_t v : flat) put_u64(out, v);
    Crc32 crc;
    crc.update(out.data() + kIndexMagic.size(),
               out.size() - kIndexMagic.size());
    put_u32(out, crc.value());
    return out;
  }

  static bool decode(std::string_view bytes, std::uint64_t& clock,
                     std::vector<std::uint64_t>& flat) {
    constexpr std::size_t kHeader = 8 + 4 + 8 + 8;
    if (bytes.size() < kHeader + 4) return false;
    if (bytes.substr(0, kIndexMagic.size()) != kIndexMagic) return false;
    std::size_t tail = bytes.size() - 4;
    std::uint32_t stored_crc = 0;
    if (!get_u32(bytes, tail, stored_crc)) return false;
    Crc32 crc;
    crc.update(bytes.data() + kIndexMagic.size(),
               bytes.size() - kIndexMagic.size() - 4);
    if (crc.value() != stored_crc) return false;
    std::size_t pos = kIndexMagic.size();
    std::uint32_t version = 0;
    std::uint64_t count = 0;
    if (!get_u32(bytes, pos, version) || version != kIndexVersion ||
        !get_u64(bytes, pos, clock) || !get_u64(bytes, pos, count)) {
      return false;
    }
    if (count != (bytes.size() - kHeader - 4) / 40 ||
        (bytes.size() - kHeader - 4) % 40 != 0) {
      return false;
    }
    flat.resize(count * 5);
    for (std::uint64_t& v : flat) {
      if (!get_u64(bytes, pos, v)) return false;
    }
    return true;
  }
};

// --- ScenarioStore -----------------------------------------------------------

ScenarioStore::ScenarioStore(std::string root) : root_(std::move(root)) {
  OSIM_CHECK_MSG(!root_.empty(), "store: empty root directory");
  std::error_code ec;
  fs::create_directories(fs::path(root_) / "objects", ec);
  if (!ec) fs::create_directories(fs::path(root_) / "tmp", ec);
  if (ec) {
    throw Error("store: cannot create cache directory " + root_ + ": " +
                ec.message());
  }
  sweep_stale_tmp(root_, kStaleTmpMaxAge);
}

std::size_t ScenarioStore::sweep_stale_tmp(const std::string& root,
                                           std::chrono::seconds max_age) {
  // Interrupted publications (kill -9 between write and rename) orphan
  // their temp files; nothing else ever references them, so age is the
  // only signal needed. The age guard keeps us from racing a live writer
  // in another process that has written but not yet renamed.
  std::size_t removed = 0;
  std::error_code ec;
  const fs::path tmp_dir = fs::path(root) / "tmp";
  if (!fs::is_directory(tmp_dir, ec)) return 0;
  const auto now = fs::file_time_type::clock::now();
  for (const auto& entry : fs::directory_iterator(tmp_dir, ec)) {
    std::error_code entry_ec;
    if (!entry.is_regular_file(entry_ec)) continue;
    const fs::file_time_type mtime = fs::last_write_time(entry, entry_ec);
    if (entry_ec) continue;
    if (now - mtime < max_age) continue;
    if (fs::remove(entry.path(), entry_ec) && !entry_ec) ++removed;
  }
  return removed;
}

std::string ScenarioStore::object_path(const pipeline::Fingerprint& fp) const {
  const std::string hex = pipeline::to_hex(fp);
  return (fs::path(root_) / "objects" / hex.substr(0, 2) / hex).string();
}

std::optional<ScenarioArtifact> ScenarioStore::load(
    const pipeline::Fingerprint& fp) {
  const std::optional<std::string> bytes = read_file(object_path(fp));
  if (!bytes.has_value()) {
    std::lock_guard<std::mutex> guard(mutex_);
    ++misses_;
    return std::nullopt;
  }
  const std::optional<DecodedObject> decoded = decode_object(*bytes);
  if (!decoded.has_value() || !(decoded->fingerprint == fp)) {
    // Damaged, version-skewed or mis-addressed: a miss, never an error.
    std::lock_guard<std::mutex> guard(mutex_);
    ++misses_;
    ++rejects_;
    return std::nullopt;
  }
  {
    std::lock_guard<std::mutex> guard(mutex_);
    ++hits_;
  }
  // Bump the LRU slot so gc() evicts cold objects first.
  {
    FileLock lock(fs::path(root_) / kLockName);
    Index index = reconciled_index();
    ++index.clock;
    for (IndexEntry& entry : index.entries) {
      if (entry.fp == fp) {
        entry.last_access = index.clock;
        ++entry.hits;
        entry.bytes = bytes->size();
        break;
      }
    }
    write_index(index);
  }
  return decoded->artifact;
}

void ScenarioStore::save(const pipeline::Fingerprint& fp,
                         const ScenarioArtifact& artifact) {
  const std::string bytes = encode_object(fp, artifact);
  const fs::path path(object_path(fp));
  std::error_code ec;
  fs::create_directories(path.parent_path(), ec);
  if (ec) {
    throw Error("store: cannot create " + path.parent_path().string() + ": " +
                ec.message());
  }
  write_file_atomic(path, bytes, fs::path(root_) / "tmp");

  FileLock lock(fs::path(root_) / kLockName);
  Index index = reconciled_index();
  ++index.clock;
  bool found = false;
  for (IndexEntry& entry : index.entries) {
    if (entry.fp == fp) {
      entry.bytes = bytes.size();
      entry.last_access = index.clock;
      found = true;
      break;
    }
  }
  if (!found) {
    index.entries.push_back(IndexEntry{fp, bytes.size(), index.clock, 0});
  }
  write_index(index);
}

std::optional<lint::Report> ScenarioStore::load_lint(
    const pipeline::Fingerprint& fp) {
  const std::optional<std::string> bytes = read_file(object_path(fp));
  if (!bytes.has_value()) {
    std::lock_guard<std::mutex> guard(mutex_);
    ++misses_;
    return std::nullopt;
  }
  std::optional<DecodedLintObject> decoded = decode_lint_object(*bytes);
  if (!decoded.has_value() || !(decoded->fingerprint == fp)) {
    std::lock_guard<std::mutex> guard(mutex_);
    ++misses_;
    ++rejects_;
    return std::nullopt;
  }
  {
    std::lock_guard<std::mutex> guard(mutex_);
    ++hits_;
  }
  {
    FileLock lock(fs::path(root_) / kLockName);
    Index index = reconciled_index();
    ++index.clock;
    for (IndexEntry& entry : index.entries) {
      if (entry.fp == fp) {
        entry.last_access = index.clock;
        ++entry.hits;
        entry.bytes = bytes->size();
        break;
      }
    }
    write_index(index);
  }
  return std::move(decoded->report);
}

void ScenarioStore::save_lint(const pipeline::Fingerprint& fp,
                              const lint::Report& report) {
  const std::string bytes = encode_lint_object(fp, report);
  const fs::path path(object_path(fp));
  std::error_code ec;
  fs::create_directories(path.parent_path(), ec);
  if (ec) {
    throw Error("store: cannot create " + path.parent_path().string() + ": " +
                ec.message());
  }
  write_file_atomic(path, bytes, fs::path(root_) / "tmp");

  FileLock lock(fs::path(root_) / kLockName);
  Index index = reconciled_index();
  ++index.clock;
  bool found = false;
  for (IndexEntry& entry : index.entries) {
    if (entry.fp == fp) {
      entry.bytes = bytes.size();
      entry.last_access = index.clock;
      found = true;
      break;
    }
  }
  if (!found) {
    index.entries.push_back(IndexEntry{fp, bytes.size(), index.clock, 0});
  }
  write_index(index);
}

std::optional<std::string> ScenarioStore::load_report(
    const pipeline::Fingerprint& scenario) {
  const pipeline::Fingerprint fp = report_address(scenario);
  const std::optional<std::string> bytes = read_file(object_path(fp));
  if (!bytes.has_value()) {
    std::lock_guard<std::mutex> guard(mutex_);
    ++misses_;
    return std::nullopt;
  }
  std::optional<DecodedReportObject> decoded = decode_report_object(*bytes);
  if (!decoded.has_value() || !(decoded->fingerprint == fp)) {
    std::lock_guard<std::mutex> guard(mutex_);
    ++misses_;
    ++rejects_;
    return std::nullopt;
  }
  {
    std::lock_guard<std::mutex> guard(mutex_);
    ++hits_;
  }
  {
    FileLock lock(fs::path(root_) / kLockName);
    Index index = reconciled_index();
    ++index.clock;
    for (IndexEntry& entry : index.entries) {
      if (entry.fp == fp) {
        entry.last_access = index.clock;
        ++entry.hits;
        entry.bytes = bytes->size();
        break;
      }
    }
    write_index(index);
  }
  return std::move(decoded->report_json);
}

void ScenarioStore::save_report(const pipeline::Fingerprint& scenario,
                                std::string_view report_json) {
  const pipeline::Fingerprint fp = report_address(scenario);
  const std::string bytes = encode_report_object(fp, report_json);
  const fs::path path(object_path(fp));
  std::error_code ec;
  fs::create_directories(path.parent_path(), ec);
  if (ec) {
    throw Error("store: cannot create " + path.parent_path().string() + ": " +
                ec.message());
  }
  write_file_atomic(path, bytes, fs::path(root_) / "tmp");

  FileLock lock(fs::path(root_) / kLockName);
  Index index = reconciled_index();
  ++index.clock;
  bool found = false;
  for (IndexEntry& entry : index.entries) {
    if (entry.fp == fp) {
      entry.bytes = bytes.size();
      entry.last_access = index.clock;
      found = true;
      break;
    }
  }
  if (!found) {
    index.entries.push_back(IndexEntry{fp, bytes.size(), index.clock, 0});
  }
  write_index(index);
}

std::vector<pipeline::Fingerprint> ScenarioStore::scan_objects() const {
  std::vector<pipeline::Fingerprint> found;
  std::error_code ec;
  const fs::path objects = fs::path(root_) / "objects";
  for (fs::directory_iterator prefix(objects, ec);
       !ec && prefix != fs::directory_iterator(); prefix.increment(ec)) {
    if (!prefix->is_directory(ec)) continue;
    std::error_code inner;
    for (fs::directory_iterator file(prefix->path(), inner);
         !inner && file != fs::directory_iterator(); file.increment(inner)) {
      const std::optional<pipeline::Fingerprint> fp =
          pipeline::fingerprint_from_hex(file->path().filename().string());
      if (fp.has_value()) found.push_back(*fp);
    }
  }
  return found;
}

ScenarioStore::Index ScenarioStore::reconciled_index() {
  Index index;
  const std::optional<std::string> bytes =
      read_file(fs::path(root_) / kIndexName);
  std::vector<std::uint64_t> flat;
  if (bytes.has_value() && IndexCodec::decode(*bytes, index.clock, flat)) {
    index.entries.reserve(flat.size() / 5);
    for (std::size_t i = 0; i + 4 < flat.size(); i += 5) {
      index.entries.push_back(IndexEntry{{flat[i + 1], flat[i]}, flat[i + 2],
                                         flat[i + 3], flat[i + 4]});
    }
  } else if (bytes.has_value()) {
    index.rebuilt = true;  // damaged index: rebuilt below, never fatal
  }
  // Reconcile with the object tree: entries for vanished objects go, files
  // published without an index update (crash between rename and index
  // write, or a hand-copied store) come in with unknown recency.
  std::vector<IndexEntry> alive;
  alive.reserve(index.entries.size());
  for (const IndexEntry& entry : index.entries) {
    std::error_code ec;
    if (fs::exists(object_path(entry.fp), ec) && !ec) {
      alive.push_back(entry);
    }
  }
  index.entries = std::move(alive);
  for (const pipeline::Fingerprint& fp : scan_objects()) {
    const bool known =
        std::any_of(index.entries.begin(), index.entries.end(),
                    [&fp](const IndexEntry& e) { return e.fp == fp; });
    if (known) continue;
    std::error_code ec;
    const std::uint64_t size = fs::file_size(object_path(fp), ec);
    index.entries.push_back(IndexEntry{fp, ec ? 0 : size, 0, 0});
  }
  return index;
}

void ScenarioStore::write_index(const Index& index) {
  std::vector<std::uint64_t> flat;
  flat.reserve(index.entries.size() * 5);
  for (const IndexEntry& entry : index.entries) {
    flat.push_back(entry.fp.hi);
    flat.push_back(entry.fp.lo);
    flat.push_back(entry.bytes);
    flat.push_back(entry.last_access);
    flat.push_back(entry.hits);
  }
  write_file_atomic(fs::path(root_) / kIndexName,
                    IndexCodec::encode(index.clock, flat),
                    fs::path(root_) / "tmp");
}

StoreStats ScenarioStore::stats() {
  FileLock lock(fs::path(root_) / kLockName);
  const Index index = reconciled_index();
  StoreStats stats;
  stats.clock = index.clock;
  stats.index_rebuilt = index.rebuilt;
  for (const IndexEntry& entry : index.entries) {
    ++stats.objects;
    stats.bytes += entry.bytes;
    stats.total_hits += entry.hits;
  }
  write_index(index);  // persist the reconciliation
  return stats;
}

VerifyReport ScenarioStore::verify() {
  VerifyReport report;
  for (const pipeline::Fingerprint& fp : scan_objects()) {
    ++report.objects_checked;
    const std::string path = object_path(fp);
    std::error_code rel_ec;
    const std::string relative = fs::relative(path, root_, rel_ec).string();
    const std::optional<std::string> bytes = read_file(path);
    if (!bytes.has_value()) {
      report.issues.push_back({relative, "unreadable"});
      continue;
    }
    // probe_object dispatches on the magic, so replay artifacts and lint
    // reports are both recognized (and neither flags the other as damage).
    const std::optional<pipeline::Fingerprint> probed = probe_object(*bytes);
    if (!probed.has_value()) {
      report.issues.push_back(
          {relative, "corrupt object (bad magic, version or CRC)"});
      continue;
    }
    if (!(*probed == fp)) {
      report.issues.push_back(
          {relative, "address mismatch: object records fingerprint " +
                         pipeline::to_hex(*probed)});
      continue;
    }
    ++report.objects_ok;
  }
  const std::optional<std::string> index_bytes =
      read_file(fs::path(root_) / kIndexName);
  if (index_bytes.has_value()) {
    std::uint64_t clock = 0;
    std::vector<std::uint64_t> flat;
    if (!IndexCodec::decode(*index_bytes, clock, flat)) {
      report.issues.push_back(
          {kIndexName, "damaged index (will be rebuilt on next use)"});
    }
  }
  return report;
}

GcReport ScenarioStore::gc(std::uint64_t max_bytes,
                           std::uint64_t max_objects) {
  FileLock lock(fs::path(root_) / kLockName);
  Index index = reconciled_index();

  GcReport report;
  for (const IndexEntry& entry : index.entries) {
    ++report.objects_before;
    report.bytes_before += entry.bytes;
  }

  // Corrupt objects are dead weight: they can only ever decode to misses,
  // so gc removes them regardless of the byte budget.
  std::vector<IndexEntry> intact;
  intact.reserve(index.entries.size());
  for (const IndexEntry& entry : index.entries) {
    const std::optional<std::string> bytes = read_file(object_path(entry.fp));
    const std::optional<pipeline::Fingerprint> probed =
        bytes.has_value() ? probe_object(*bytes) : std::nullopt;
    if (probed.has_value() && *probed == entry.fp) {
      intact.push_back(entry);
      continue;
    }
    std::error_code ec;
    fs::remove(object_path(entry.fp), ec);
    ++report.objects_removed;
    report.bytes_removed += entry.bytes;
  }

  // LRU eviction: coldest first (last_access 0 = never seen hot).
  std::sort(intact.begin(), intact.end(),
            [](const IndexEntry& a, const IndexEntry& b) {
              if (a.last_access != b.last_access) {
                return a.last_access < b.last_access;
              }
              return std::make_pair(a.fp.hi, a.fp.lo) <
                     std::make_pair(b.fp.hi, b.fp.lo);
            });
  std::uint64_t kept_bytes = 0;
  for (const IndexEntry& entry : intact) kept_bytes += entry.bytes;
  std::size_t evict = 0;
  while (evict < intact.size() &&
         (kept_bytes > max_bytes ||
          (max_objects != 0 && intact.size() - evict > max_objects))) {
    const IndexEntry& victim = intact[evict];
    std::error_code ec;
    fs::remove(object_path(victim.fp), ec);
    kept_bytes -= victim.bytes;
    ++report.objects_removed;
    report.bytes_removed += victim.bytes;
    ++evict;
  }
  intact.erase(intact.begin(),
               intact.begin() + static_cast<std::ptrdiff_t>(evict));

  report.objects_kept = intact.size();
  report.bytes_kept = kept_bytes;
  index.entries = std::move(intact);
  write_index(index);
  return report;
}

std::uint64_t ScenarioStore::hits() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return hits_;
}

std::uint64_t ScenarioStore::misses() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return misses_;
}

std::uint64_t ScenarioStore::rejects() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return rejects_;
}

std::string VerifyReport::render_text() const {
  std::string out = strprintf("store verify: %llu object(s), %llu OK\n",
                              static_cast<unsigned long long>(objects_checked),
                              static_cast<unsigned long long>(objects_ok));
  for (const VerifyIssue& issue : issues) {
    out += "  " + issue.path + ": " + issue.message + "\n";
  }
  return out;
}

std::string resolve_cache_dir(std::string explicit_dir) {
  if (!explicit_dir.empty()) return explicit_dir;
  const char* env = std::getenv("OSIM_CACHE_DIR");
  return env != nullptr ? std::string(env) : std::string();
}

}  // namespace osim::store
