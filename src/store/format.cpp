#include "store/format.hpp"

#include <cstring>
#include <utility>

#include "common/crc32.hpp"
#include "metrics/replay_metrics.hpp"

namespace osim::store {

namespace {

// Little-endian fixed-width primitives. The store is an on-disk cache that
// may be shared between machines via network filesystems, so the byte
// order is pinned rather than host-native.

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void put_f64(std::string& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

// Readers advance `pos` and return false on a short buffer; decode keeps
// threading the failure up instead of throwing.

bool get_u32(std::string_view in, std::size_t& pos, std::uint32_t& v) {
  if (in.size() - pos < 4) return false;
  v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(in[pos + i]))
         << (8 * i);
  }
  pos += 4;
  return true;
}

bool get_u64(std::string_view in, std::size_t& pos, std::uint64_t& v) {
  if (in.size() - pos < 8) return false;
  v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(in[pos + i]))
         << (8 * i);
  }
  pos += 8;
  return true;
}

bool get_f64(std::string_view in, std::size_t& pos, double& v) {
  std::uint64_t bits = 0;
  if (!get_u64(in, pos, bits)) return false;
  std::memcpy(&v, &bits, sizeof(v));
  return true;
}

bool get_u8(std::string_view in, std::size_t& pos, std::uint8_t& v) {
  if (in.size() - pos < 1) return false;
  v = static_cast<std::uint8_t>(in[pos]);
  pos += 1;
  return true;
}

void put_counts(std::string& out, const faults::Counts& c) {
  put_u8(out, c.enabled ? 1 : 0);
  put_u64(out, c.seed);
  put_u64(out, c.messages_dropped);
  put_u64(out, c.retransmits);
  put_u64(out, c.handshake_reissues);
  put_u64(out, c.hard_stalls);
  put_u64(out, c.degraded_transfers);
  put_u64(out, c.perturbed_bursts);
  put_u64(out, c.straggled_bursts);
  put_f64(out, c.injected_delay_s);
  put_f64(out, c.injected_compute_s);
}

bool get_counts(std::string_view in, std::size_t& pos, faults::Counts& c) {
  std::uint8_t enabled = 0;
  if (!get_u8(in, pos, enabled)) return false;
  if (enabled > 1) return false;  // a flipped bool byte is damage, not data
  c.enabled = enabled == 1;
  return get_u64(in, pos, c.seed) && get_u64(in, pos, c.messages_dropped) &&
         get_u64(in, pos, c.retransmits) &&
         get_u64(in, pos, c.handshake_reissues) &&
         get_u64(in, pos, c.hard_stalls) &&
         get_u64(in, pos, c.degraded_transfers) &&
         get_u64(in, pos, c.perturbed_bursts) &&
         get_u64(in, pos, c.straggled_bursts) &&
         get_f64(in, pos, c.injected_delay_s) &&
         get_f64(in, pos, c.injected_compute_s);
}

void put_rank_stats(std::string& out, const dimemas::RankStats& s) {
  put_f64(out, s.compute_s);
  put_f64(out, s.send_blocked_s);
  put_f64(out, s.recv_blocked_s);
  put_f64(out, s.wait_blocked_s);
  put_f64(out, s.finish_time);
  put_u64(out, s.messages_sent);
  put_u64(out, s.messages_received);
  put_u64(out, s.bytes_sent);
  put_u64(out, s.bytes_received);
}

bool get_rank_stats(std::string_view in, std::size_t& pos,
                    dimemas::RankStats& s) {
  return get_f64(in, pos, s.compute_s) && get_f64(in, pos, s.send_blocked_s) &&
         get_f64(in, pos, s.recv_blocked_s) &&
         get_f64(in, pos, s.wait_blocked_s) && get_f64(in, pos, s.finish_time) &&
         get_u64(in, pos, s.messages_sent) &&
         get_u64(in, pos, s.messages_received) &&
         get_u64(in, pos, s.bytes_sent) && get_u64(in, pos, s.bytes_received);
}

void put_str(std::string& out, const std::string& s) {
  put_u64(out, s.size());
  out += s;
}

/// Upper bound on stored rank counts: a flipped length byte must fail the
/// decode instead of provoking a multi-gigabyte allocation before the CRC
/// verdict is even consulted. (The CRC is checked first regardless; this
/// guards the decoder against future reorderings.)
constexpr std::uint64_t kMaxRanks = 1u << 20;

/// Same role for stored string lengths and diagnostic counts.
constexpr std::uint64_t kMaxStringBytes = 1u << 24;
constexpr std::uint64_t kMaxDiagnostics = 1u << 22;

bool get_str(std::string_view in, std::size_t& pos, std::string& s) {
  std::uint64_t size = 0;
  if (!get_u64(in, pos, size)) return false;
  if (size > kMaxStringBytes || size > in.size() - pos) return false;
  s.assign(in.substr(pos, size));
  pos += size;
  return true;
}

std::uint32_t object_crc(std::string_view bytes_after_magic) {
  Crc32 crc;
  crc.update(bytes_after_magic.data(), bytes_after_magic.size());
  return crc.value();
}

}  // namespace

std::string encode_object(const pipeline::Fingerprint& fp,
                          const ScenarioArtifact& artifact) {
  std::string payload;
  put_f64(payload, artifact.makespan);
  put_u64(payload, artifact.des_events);
  put_f64(payload, artifact.fault_wait_s);
  put_f64(payload, artifact.progress_wait_s);
  put_counts(payload, artifact.fault_counts);
  put_u64(payload, artifact.rank_stats.size());
  for (const dimemas::RankStats& s : artifact.rank_stats) {
    put_rank_stats(payload, s);
  }

  std::string out;
  out.reserve(kObjectMagic.size() + 28 + payload.size() + 4);
  out.append(kObjectMagic);
  put_u32(out, kObjectVersion);
  put_u64(out, fp.hi);
  put_u64(out, fp.lo);
  put_u64(out, payload.size());
  out += payload;
  put_u32(out, object_crc(
                   std::string_view(out).substr(kObjectMagic.size())));
  return out;
}

std::optional<DecodedObject> decode_object(std::string_view bytes) {
  constexpr std::size_t kHeader = 8 + 4 + 8 + 8 + 8;  // magic..payload_bytes
  if (bytes.size() < kHeader + 4) return std::nullopt;
  if (bytes.substr(0, kObjectMagic.size()) != kObjectMagic) {
    return std::nullopt;
  }
  // Integrity before interpretation: the CRC covers everything after the
  // magic (version, address, sizes, payload), so a single flipped bit
  // anywhere the footer can see is rejected here.
  std::size_t tail = bytes.size() - 4;
  std::uint32_t stored_crc = 0;
  if (!get_u32(bytes, tail, stored_crc)) return std::nullopt;
  if (object_crc(bytes.substr(kObjectMagic.size(),
                              bytes.size() - kObjectMagic.size() - 4)) !=
      stored_crc) {
    return std::nullopt;
  }

  std::size_t pos = kObjectMagic.size();
  std::uint32_t version = 0;
  if (!get_u32(bytes, pos, version)) return std::nullopt;
  if (version != kObjectVersion) return std::nullopt;  // skew = miss

  DecodedObject decoded;
  std::uint64_t payload_bytes = 0;
  if (!get_u64(bytes, pos, decoded.fingerprint.hi) ||
      !get_u64(bytes, pos, decoded.fingerprint.lo) ||
      !get_u64(bytes, pos, payload_bytes)) {
    return std::nullopt;
  }
  if (payload_bytes != bytes.size() - kHeader - 4) return std::nullopt;

  ScenarioArtifact& a = decoded.artifact;
  std::uint64_t rank_count = 0;
  if (!get_f64(bytes, pos, a.makespan) || !get_u64(bytes, pos, a.des_events) ||
      !get_f64(bytes, pos, a.fault_wait_s) ||
      !get_f64(bytes, pos, a.progress_wait_s) ||
      !get_counts(bytes, pos, a.fault_counts) ||
      !get_u64(bytes, pos, rank_count)) {
    return std::nullopt;
  }
  if (rank_count > kMaxRanks) return std::nullopt;
  a.rank_stats.resize(rank_count);
  for (dimemas::RankStats& s : a.rank_stats) {
    if (!get_rank_stats(bytes, pos, s)) return std::nullopt;
  }
  if (pos != bytes.size() - 4) return std::nullopt;  // trailing payload bytes
  return decoded;
}

ScenarioArtifact make_artifact(const dimemas::SimResult& result) {
  ScenarioArtifact artifact;
  artifact.makespan = result.makespan;
  artifact.des_events = result.des_events;
  artifact.rank_stats = result.rank_stats;
  artifact.fault_counts = result.fault_counts;
  if (result.metrics != nullptr) {
    for (const metrics::RankWaitAttribution& waits :
         result.metrics->rank_waits) {
      artifact.fault_wait_s += waits.total().fault_s;
      artifact.progress_wait_s += waits.total().progress_s;
    }
  }
  return artifact;
}

dimemas::SimResult to_sim_result(const ScenarioArtifact& artifact) {
  dimemas::SimResult result;
  result.makespan = artifact.makespan;
  result.des_events = artifact.des_events;
  result.rank_stats = artifact.rank_stats;
  result.fault_counts = artifact.fault_counts;
  return result;
}

std::string encode_lint_object(const pipeline::Fingerprint& fp,
                               const lint::Report& report) {
  std::string payload;
  put_u64(payload, report.diagnostics().size());
  for (const lint::Diagnostic& d : report.diagnostics()) {
    put_u8(payload, static_cast<std::uint8_t>(d.severity));
    put_str(payload, d.pass);
    put_str(payload, d.code);
    put_u64(payload, static_cast<std::uint64_t>(
                         static_cast<std::int64_t>(d.rank)));
    put_u64(payload, static_cast<std::uint64_t>(
                         static_cast<std::int64_t>(d.record)));
    put_str(payload, d.message);
    put_str(payload, d.evidence);
  }

  std::string out;
  out.reserve(kLintObjectMagic.size() + 28 + payload.size() + 4);
  out.append(kLintObjectMagic);
  put_u32(out, kLintObjectVersion);
  put_u64(out, fp.hi);
  put_u64(out, fp.lo);
  put_u64(out, payload.size());
  out += payload;
  put_u32(out, object_crc(
                   std::string_view(out).substr(kLintObjectMagic.size())));
  return out;
}

std::optional<DecodedLintObject> decode_lint_object(std::string_view bytes) {
  constexpr std::size_t kHeader = 8 + 4 + 8 + 8 + 8;  // magic..payload_bytes
  if (bytes.size() < kHeader + 4) return std::nullopt;
  if (bytes.substr(0, kLintObjectMagic.size()) != kLintObjectMagic) {
    return std::nullopt;
  }
  std::size_t tail = bytes.size() - 4;
  std::uint32_t stored_crc = 0;
  if (!get_u32(bytes, tail, stored_crc)) return std::nullopt;
  if (object_crc(bytes.substr(kLintObjectMagic.size(),
                              bytes.size() - kLintObjectMagic.size() - 4)) !=
      stored_crc) {
    return std::nullopt;
  }

  std::size_t pos = kLintObjectMagic.size();
  std::uint32_t version = 0;
  if (!get_u32(bytes, pos, version)) return std::nullopt;
  if (version != kLintObjectVersion) return std::nullopt;  // skew = miss

  DecodedLintObject decoded;
  std::uint64_t payload_bytes = 0;
  if (!get_u64(bytes, pos, decoded.fingerprint.hi) ||
      !get_u64(bytes, pos, decoded.fingerprint.lo) ||
      !get_u64(bytes, pos, payload_bytes)) {
    return std::nullopt;
  }
  if (payload_bytes != bytes.size() - kHeader - 4) return std::nullopt;

  std::uint64_t count = 0;
  if (!get_u64(bytes, pos, count)) return std::nullopt;
  if (count > kMaxDiagnostics) return std::nullopt;
  for (std::uint64_t i = 0; i < count; ++i) {
    lint::Diagnostic d;
    std::uint8_t severity = 0;
    std::uint64_t rank = 0;
    std::uint64_t record = 0;
    if (!get_u8(bytes, pos, severity) || severity > 2 ||
        !get_str(bytes, pos, d.pass) || !get_str(bytes, pos, d.code) ||
        !get_u64(bytes, pos, rank) || !get_u64(bytes, pos, record) ||
        !get_str(bytes, pos, d.message) || !get_str(bytes, pos, d.evidence)) {
      return std::nullopt;
    }
    d.severity = static_cast<lint::Severity>(severity);
    d.rank = static_cast<trace::Rank>(static_cast<std::int64_t>(rank));
    d.record =
        static_cast<std::ptrdiff_t>(static_cast<std::int64_t>(record));
    decoded.report.add(std::move(d));
  }
  if (pos != bytes.size() - 4) return std::nullopt;  // trailing payload bytes
  return decoded;
}

pipeline::Fingerprint report_address(const pipeline::Fingerprint& scenario) {
  // Same two-lane FNV-1a construction as the context fingerprints
  // (pipeline/context.cpp), folded over a domain tag so a report address
  // can never equal the scenario fingerprint it derives from.
  constexpr std::uint64_t kPrime = 0x100000001b3ULL;
  constexpr std::uint64_t kPrime2 = 0x9e3779b97f4a7c15ULL;
  std::uint64_t lo = 0xcbf29ce484222325ULL;
  std::uint64_t hi = 0x84222325cbf29ce4ULL;
  const auto mix_u64 = [&](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      const auto b = static_cast<unsigned char>(v >> (8 * i));
      lo = (lo ^ b) * kPrime;
      hi = (hi ^ b) * kPrime2;
    }
  };
  mix_u64(0x52505254);  // domain tag "RPRT"
  mix_u64(scenario.lo);
  mix_u64(scenario.hi);
  mix_u64(kReportObjectVersion);
  return pipeline::Fingerprint{lo, hi};
}

std::string encode_report_object(const pipeline::Fingerprint& fp,
                                 std::string_view report_json) {
  std::string out;
  out.reserve(kReportObjectMagic.size() + 28 + report_json.size() + 4);
  out.append(kReportObjectMagic);
  put_u32(out, kReportObjectVersion);
  put_u64(out, fp.hi);
  put_u64(out, fp.lo);
  put_u64(out, report_json.size());
  out.append(report_json);
  put_u32(out, object_crc(
                   std::string_view(out).substr(kReportObjectMagic.size())));
  return out;
}

std::optional<DecodedReportObject> decode_report_object(
    std::string_view bytes) {
  constexpr std::size_t kHeader = 8 + 4 + 8 + 8 + 8;  // magic..payload_bytes
  if (bytes.size() < kHeader + 4) return std::nullopt;
  if (bytes.substr(0, kReportObjectMagic.size()) != kReportObjectMagic) {
    return std::nullopt;
  }
  std::size_t tail = bytes.size() - 4;
  std::uint32_t stored_crc = 0;
  if (!get_u32(bytes, tail, stored_crc)) return std::nullopt;
  if (object_crc(bytes.substr(kReportObjectMagic.size(),
                              bytes.size() - kReportObjectMagic.size() - 4)) !=
      stored_crc) {
    return std::nullopt;
  }

  std::size_t pos = kReportObjectMagic.size();
  std::uint32_t version = 0;
  if (!get_u32(bytes, pos, version)) return std::nullopt;
  if (version != kReportObjectVersion) return std::nullopt;  // skew = miss

  DecodedReportObject decoded;
  std::uint64_t payload_bytes = 0;
  if (!get_u64(bytes, pos, decoded.fingerprint.hi) ||
      !get_u64(bytes, pos, decoded.fingerprint.lo) ||
      !get_u64(bytes, pos, payload_bytes)) {
    return std::nullopt;
  }
  if (payload_bytes != bytes.size() - kHeader - 4) return std::nullopt;
  decoded.report_json.assign(bytes.substr(pos, payload_bytes));
  return decoded;
}

std::optional<pipeline::Fingerprint> probe_object(std::string_view bytes) {
  if (bytes.size() >= kLintObjectMagic.size() &&
      bytes.substr(0, kLintObjectMagic.size()) == kLintObjectMagic) {
    const std::optional<DecodedLintObject> lint_obj =
        decode_lint_object(bytes);
    if (lint_obj.has_value()) return lint_obj->fingerprint;
    return std::nullopt;
  }
  if (bytes.size() >= kReportObjectMagic.size() &&
      bytes.substr(0, kReportObjectMagic.size()) == kReportObjectMagic) {
    const std::optional<DecodedReportObject> report_obj =
        decode_report_object(bytes);
    if (report_obj.has_value()) return report_obj->fingerprint;
    return std::nullopt;
  }
  const std::optional<DecodedObject> obj = decode_object(bytes);
  if (obj.has_value()) return obj->fingerprint;
  return std::nullopt;
}

}  // namespace osim::store
