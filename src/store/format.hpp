// Binary format of one scenario-store object.
//
// An object is the durable residue of one replay: everything a warm sweep
// needs to answer Study::makespan() — and osim_replay's default output —
// without re-simulating. Fixed-width little-endian layout:
//
//   magic "OSIMSTO1" (8 bytes)
//   u32 format version (kObjectVersion; any other value is a miss)
//   u64 fingerprint.hi, u64 fingerprint.lo   (the content address)
//   u64 payload_bytes (P)
//   payload (P bytes):
//     f64 makespan, u64 des_events, f64 fault_wait_s, f64 progress_wait_s
//     u8 fault_enabled, then the faults::Counts fields
//     u64 rank_count, per rank the dimemas::RankStats fields
//   u32 CRC-32 (IEEE, common/crc32.hpp) over every byte after the magic
//
// Decoding is strict and total: decode_object() never throws on content —
// a bad magic, version skew, size mismatch, CRC mismatch, truncated or
// overlong payload all come back as nullopt, which the store treats as a
// cache miss (salvage-style; see DESIGN.md §3.5). The embedded fingerprint
// lets readers detect objects that were renamed or cross-copied between
// keys, which a file-content CRC alone cannot see.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "dimemas/result.hpp"
#include "faults/model.hpp"
#include "lint/diagnostics.hpp"
#include "pipeline/fingerprint.hpp"

namespace osim::store {

inline constexpr std::string_view kObjectMagic = "OSIMSTO1";
/// v2 appended progress_wait_s to the payload; v1 objects decode as a miss
/// (strict total decode) and are re-replayed, never misread.
inline constexpr std::uint32_t kObjectVersion = 2;

/// Second object kind sharing the store: a cached lint report, keyed by a
/// trace-derived fingerprint (pipeline/lint_cache.hpp). Same envelope as
/// replay objects — magic, u32 version, fingerprint, u64 payload size,
/// payload, trailing CRC-32 — with its own magic so the two kinds can
/// never be confused for one another.
inline constexpr std::string_view kLintObjectMagic = "OSIMLNT1";
inline constexpr std::uint32_t kLintObjectVersion = 1;

/// Third object kind: a finished JSON run report, stored verbatim by the
/// analysis service (osim_serve) so a controller restart — or another
/// controller sharing the store — can answer fetch-report without
/// replaying. Keyed by report_address() (a domain-tagged derivation of the
/// scenario fingerprint), same envelope, own magic.
inline constexpr std::string_view kReportObjectMagic = "OSIMRPT1";
inline constexpr std::uint32_t kReportObjectVersion = 1;

/// The cached result of one replay. Rich enough to reconstruct the
/// summary-level SimResult (makespan, per-rank statistics, fault counters)
/// that the benches and osim_replay's default output consume; timelines,
/// comm events and full metrics are intentionally not stored — contexts
/// that record those carry different fingerprints anyway.
struct ScenarioArtifact {
  double makespan = 0.0;
  std::uint64_t des_events = 0;
  std::vector<dimemas::RankStats> rank_stats;
  faults::Counts fault_counts;
  /// Total fault-attributed wait time across ranks; non-zero only for
  /// fault-injected contexts that collect metrics (mirrors
  /// pipeline::ScenarioRecord::fault_wait_s).
  double fault_wait_s = 0.0;
  /// Total progress-engine-attributed wait time across ranks (mirrors
  /// pipeline::ScenarioRecord::progress_wait_s).
  double progress_wait_s = 0.0;

  friend bool operator==(const ScenarioArtifact&,
                         const ScenarioArtifact&) = default;
};

/// Serializes `artifact` under content address `fp`.
std::string encode_object(const pipeline::Fingerprint& fp,
                          const ScenarioArtifact& artifact);

struct DecodedObject {
  pipeline::Fingerprint fingerprint;
  ScenarioArtifact artifact;
};

/// Strict decode; nullopt on any damage or version skew (never throws).
std::optional<DecodedObject> decode_object(std::string_view bytes);

/// Projects a SimResult down to its storable artifact (fault_wait_s is
/// summed from the metrics when the replay collected them).
ScenarioArtifact make_artifact(const dimemas::SimResult& result);

/// Inflates an artifact back into a summary-level SimResult (no timelines,
/// comms or metrics — see ScenarioArtifact).
dimemas::SimResult to_sim_result(const ScenarioArtifact& artifact);

/// Serializes a full lint report (every diagnostic, all fields) under
/// content address `fp`. Storing the diagnostics themselves — not just the
/// counts — is what makes a warm lint run render byte-identically to cold.
std::string encode_lint_object(const pipeline::Fingerprint& fp,
                               const lint::Report& report);

struct DecodedLintObject {
  pipeline::Fingerprint fingerprint;
  lint::Report report;
};

/// Strict decode; nullopt on any damage, version skew or a non-lint magic.
std::optional<DecodedLintObject> decode_lint_object(std::string_view bytes);

/// Storage address of a scenario's cached run report: the scenario
/// fingerprint folded with a domain tag and the report-object version, so
/// a report object can never collide with the replay artifact of the same
/// scenario (which keeps the raw fingerprint as its address).
pipeline::Fingerprint report_address(const pipeline::Fingerprint& scenario);

/// Serializes a run-report JSON document under content address `fp`
/// (callers pass report_address(scenario_fp)). The JSON bytes are stored
/// verbatim — what makes a fetched report byte-identical to the batch
/// osim_replay --report output it was computed by.
std::string encode_report_object(const pipeline::Fingerprint& fp,
                                 std::string_view report_json);

struct DecodedReportObject {
  pipeline::Fingerprint fingerprint;
  std::string report_json;
};

/// Strict decode; nullopt on any damage, version skew or a foreign magic.
std::optional<DecodedReportObject> decode_report_object(
    std::string_view bytes);

/// Kind-dispatching integrity probe used by verify()/gc(): decodes `bytes`
/// as whichever object kind its magic announces and returns the embedded
/// fingerprint, or nullopt when the object is corrupt under every kind.
std::optional<pipeline::Fingerprint> probe_object(std::string_view bytes);

}  // namespace osim::store
