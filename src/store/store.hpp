// ScenarioStore — a persistent, content-addressed artifact store.
//
// The disk tier of the replay cache (see pipeline::Study): objects are
// keyed by pipeline::Fingerprint and live at
//
//   <root>/objects/<first 2 hex digits>/<32 hex digits>
//
// alongside a small LRU index (<root>/index.osim) and an advisory lock
// file (<root>/lock). The store is safe to share between concurrent
// processes and threads:
//
//   publication  objects are written to <root>/tmp and renamed into place,
//                so a reader only ever sees absent or complete files;
//   index        every read-modify-write of the index happens under an
//                exclusive advisory flock on <root>/lock, and the index is
//                itself published by rename;
//   reads        load() needs neither the lock nor the index — the object
//                path is derived from the key alone, which is what makes
//                a gc'd, hand-pruned or half-indexed store merely slower,
//                never wrong.
//
// Damage never propagates: a corrupt or version-skewed object decodes to
// a miss (strict CRC, see store/format.hpp), and a damaged index is
// rebuilt from a directory scan. The index is metadata only — byte sizes,
// hit counts and a logical LRU clock used by gc() — so losing it loses
// recency, not results.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "pipeline/fingerprint.hpp"
#include "store/format.hpp"

namespace osim::store {

/// Store-wide totals, as recorded in the index (reconciled with the object
/// tree on load, so stale entries do not inflate the numbers).
struct StoreStats {
  std::uint64_t objects = 0;
  std::uint64_t bytes = 0;
  std::uint64_t total_hits = 0;  // lifetime disk hits recorded in the index
  std::uint64_t clock = 0;       // logical LRU clock (advances per access)
  bool index_rebuilt = false;    // index was missing/damaged and rebuilt
};

struct VerifyIssue {
  std::string path;  // relative to the store root
  std::string message;
};

/// Full-scan integrity report: every object decoded and checked against
/// its address, plus the index header.
struct VerifyReport {
  std::uint64_t objects_checked = 0;
  std::uint64_t objects_ok = 0;
  std::vector<VerifyIssue> issues;

  bool clean() const { return issues.empty(); }
  std::string render_text() const;
};

struct GcReport {
  std::uint64_t objects_before = 0;
  std::uint64_t bytes_before = 0;
  std::uint64_t objects_removed = 0;  // evicted + corrupt + stale
  std::uint64_t bytes_removed = 0;
  std::uint64_t objects_kept = 0;
  std::uint64_t bytes_kept = 0;
};

/// Temp files older than this are orphans of a crashed publication and
/// are swept when a store opens; anything younger may belong to a live
/// writer mid-rename.
inline constexpr std::chrono::seconds kStaleTmpMaxAge =
    std::chrono::seconds(3600);

class ScenarioStore {
 public:
  /// Opens (creating if needed) the store rooted at `root`; throws
  /// osim::Error when the directory tree cannot be created. Sweeps stale
  /// tmp files (older than kStaleTmpMaxAge) left behind by crashed
  /// publications.
  explicit ScenarioStore(std::string root);

  /// Removes `<root>/tmp` entries older than `max_age`; returns how many
  /// were removed. Exposed for tests and maintenance tools; the
  /// constructor calls it with kStaleTmpMaxAge. Never throws — an
  /// unsweepable orphan is tomorrow's problem, not today's error.
  static std::size_t sweep_stale_tmp(const std::string& root,
                                     std::chrono::seconds max_age);

  const std::string& root() const { return root_; }

  /// Strict read-through lookup. A hit bumps the object's LRU slot in the
  /// index; a corrupt, truncated or version-skewed object counts as a miss
  /// (and as a reject, see rejects()). Never throws on object damage.
  std::optional<ScenarioArtifact> load(const pipeline::Fingerprint& fp);

  /// Publishes `artifact` under `fp` (write temp + rename, then index
  /// update). Overwrites any previous object at the same address — replay
  /// is pure, so an overwrite is bit-identical anyway. Throws osim::Error
  /// on I/O failure; callers on the write-behind path treat that as a
  /// warning, not an error (the result is already computed).
  void save(const pipeline::Fingerprint& fp, const ScenarioArtifact& artifact);

  /// Lint-report twin of load(): strict read-through lookup of a cached
  /// lint report (object kind "OSIMLNT1"). Shares the object tree, index
  /// and LRU policy with replay artifacts.
  std::optional<lint::Report> load_lint(const pipeline::Fingerprint& fp);

  /// Lint-report twin of save().
  void save_lint(const pipeline::Fingerprint& fp, const lint::Report& report);

  /// Run-report twin of load(): strict read-through lookup of a cached
  /// JSON run report (object kind "OSIMRPT1"), keyed by the *scenario*
  /// fingerprint — the report_address() derivation happens inside, so
  /// callers never handle report addresses directly.
  std::optional<std::string> load_report(const pipeline::Fingerprint& scenario);

  /// Run-report twin of save(); stores the JSON bytes verbatim.
  void save_report(const pipeline::Fingerprint& scenario,
                   std::string_view report_json);

  /// Absolute object path for `fp` (the file may or may not exist).
  std::string object_path(const pipeline::Fingerprint& fp) const;

  StoreStats stats();
  VerifyReport verify();

  /// Evicts least-recently-used objects until the store holds at most
  /// `max_bytes` of objects (and at most `max_objects` objects, when
  /// non-zero). Corrupt objects and stale index entries are always
  /// removed. max_bytes == 0 empties the store.
  GcReport gc(std::uint64_t max_bytes, std::uint64_t max_objects = 0);

  // Process-local probe counters (thread-safe).
  std::uint64_t hits() const;
  std::uint64_t misses() const;
  /// Objects that existed but failed the strict decode and were therefore
  /// served as misses. Also counted in misses().
  std::uint64_t rejects() const;

 private:
  struct IndexEntry {
    pipeline::Fingerprint fp;
    std::uint64_t bytes = 0;
    std::uint64_t last_access = 0;  // logical clock tick; 0 = never/unknown
    std::uint64_t hits = 0;
  };
  struct Index {
    std::uint64_t clock = 0;
    std::vector<IndexEntry> entries;
    bool rebuilt = false;
  };

  Index reconciled_index();  // call with the store lock held
  void write_index(const Index& index);
  std::vector<pipeline::Fingerprint> scan_objects() const;

  std::string root_;
  mutable std::mutex mutex_;  // guards the counters
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t rejects_ = 0;
};

/// Cache-directory resolution shared by StudyOptions::cache_dir and the
/// CLI --cache-dir flags: the explicit value wins, then $OSIM_CACHE_DIR,
/// then "" (disk tier off).
std::string resolve_cache_dir(std::string explicit_dir);

}  // namespace osim::store
