// Sweep3D mini-app.
//
// Wavefront transport sweep on a 2-D process grid: each rank waits for the
// incoming west/north edge fluxes from its upstream neighbours, performs
// several angle-block passes over its cell block, and forwards the east and
// south edge fluxes downstream. Four sweep directions per iteration stand
// in for the real code's octants; each edge element is an angle-flux pencil
// (Pencil<8>), matching the real code's ni*mk-double edge messages.
//
// Pattern shapes (paper Table II / Figure 5(a), Sweep3D rows):
//   * production late and staggered: the outgoing edge is rewritten on
//     every angle pass ("all of them are revisited and accessed many times
//     during one production interval"), so an element's final value only
//     appears in the last pass — first final version at ~(A-1)/A of the
//     interval (the paper measured 66.3%, i.e. A = 3 passes);
//   * consumption immediate: the incoming edge is unpacked in full right
//     after the receive (the paper measured 0.02%).
//
// The wavefront dependency chain is what gives Sweep3D the paper's largest
// ideal-pattern speedup: chunking creates finer-grain pipeline parallelism
// across the diagonal.
#include <cmath>
#include <vector>

#include "apps/app.hpp"
#include "apps/pencil.hpp"
#include "common/expect.hpp"

namespace osim::apps {

namespace {

constexpr std::size_t kAngles = 8;  // flux components per edge element
using Flux = Pencil<kAngles>;

struct Grid2D {
  std::int32_t px = 0;
  std::int32_t py = 0;
};

/// Near-square factorization of the rank count.
Grid2D make_grid(std::int32_t ranks) {
  std::int32_t px = static_cast<std::int32_t>(std::sqrt(ranks));
  while (px > 1 && ranks % px != 0) --px;
  return Grid2D{px, ranks / px};
}

class Sweep3d final : public MiniApp {
 public:
  std::string name() const override { return "sweep3d"; }
  std::string description() const override {
    return "wavefront transport sweep on a 2-D process grid (4 directions, "
           "3 angle passes)";
  }
  std::int32_t paper_buses() const override { return 12; }
  std::string pattern_buffer() const override { return "east_out"; }
  bool pattern_is_production() const override { return true; }
  bool supports_ranks(std::int32_t ranks) const override {
    return ranks >= 2;
  }

  void run(tracer::Process& p, const AppConfig& config) const override {
    const Grid2D grid = make_grid(p.size());
    const std::int32_t gx = p.rank() % grid.px;
    const std::int32_t gy = p.rank() / grid.px;

    const std::size_t ni = 600u * static_cast<std::size_t>(config.scale);
    const std::size_t nj = 16;
    constexpr int kAnglePasses = 3;

    std::vector<double> phi(ni * nj, 1.0);
    std::vector<double> west_flux(ni, 0.5);
    std::vector<double> north_flux(nj, 0.5);

    auto west_in = p.make_buffer<Flux>(ni, "west_in");
    auto north_in = p.make_buffer<Flux>(nj, "north_in");
    auto east_out = p.make_buffer<Flux>(ni, "east_out");
    auto south_out = p.make_buffer<Flux>(nj, "south_out");

    // Tags per direction and edge orientation.
    auto tag_of = [](int direction, bool horizontal) {
      return direction * 2 + (horizontal ? 0 : 1);
    };

    for (std::int32_t iter = 0; iter < config.iterations; ++iter) {
      for (int direction = 0; direction < 4; ++direction) {
        const int dx = (direction & 1) ? -1 : 1;
        const int dy = (direction & 2) ? -1 : 1;
        const std::int32_t up_x = gx - dx;  // upstream neighbour in x
        const std::int32_t up_y = gy - dy;
        const std::int32_t down_x = gx + dx;
        const std::int32_t down_y = gy + dy;
        const bool has_up_x = up_x >= 0 && up_x < grid.px;
        const bool has_up_y = up_y >= 0 && up_y < grid.py;
        const bool has_down_x = down_x >= 0 && down_x < grid.px;
        const bool has_down_y = down_y >= 0 && down_y < grid.py;

        // --- receive upstream edges and unpack them immediately ---------
        if (has_up_x) {
          p.recv(west_in, gy * grid.px + up_x, tag_of(direction, true));
          for (std::size_t i = 0; i < ni; ++i) {
            west_flux[i] = west_in.load(i)[0];
          }
        } else {
          for (std::size_t i = 0; i < ni; ++i) west_flux[i] = 0.5;
          p.compute(ni);
        }
        if (has_up_y) {
          p.recv(north_in, up_y * grid.px + gx, tag_of(direction, false));
          for (std::size_t j = 0; j < nj; ++j) {
            north_flux[j] = north_in.load(j)[0];
          }
        } else {
          for (std::size_t j = 0; j < nj; ++j) north_flux[j] = 0.5;
          p.compute(nj);
        }

        // --- block sweep: kAnglePasses passes over the cells -------------
        for (int pass = 0; pass < kAnglePasses; ++pass) {
          for (std::size_t i = 0; i < ni; ++i) {
            double row_flux = west_flux[i];
            for (std::size_t j = 0; j < nj; ++j) {
              const std::size_t cell = i * nj + j;
              const double inflow = 0.5 * (row_flux + north_flux[j]);
              phi[cell] = 0.25 * (phi[cell] + inflow) + 0.1;
              row_flux = phi[cell];
              // The outgoing edge is revisited mid-row and at the row end;
              // only the last pass writes the final value.
              if (j == nj / 2 || j + 1 == nj) {
                east_out[i] = make_pencil<kAngles>(row_flux);
              }
            }
            north_flux[i % nj] = 0.5 * (north_flux[i % nj] + row_flux);
            p.compute(40 * nj);  // per-cell flux arithmetic for this row
            // The south edge element for this band of rows accumulates per
            // pass; like the east edge, its final value appears in the last
            // pass, staggered across the sweep.
            const std::size_t band = i * nj / ni;
            if ((i + 1) * nj / ni != band || i + 1 == ni) {
              south_out[band] = make_pencil<kAngles>(north_flux[i % nj]);
            }
          }
        }

        // --- boundary-correction pass: most edge elements receive their
        // final (corrected) value in this short tail sweep, reproducing
        // the paper's measured clustering (first final version at ~66%,
        // but the first quarter of the message only at ~95%).
        for (std::size_t i = 0; i < ni; ++i) {
          p.compute(56);  // correction arithmetic for this row
          if (i % 9 != 0) {
            east_out[i] = make_pencil<kAngles>(phi[i * nj + nj - 1] * 1.01);
          }
          const std::size_t band = i * nj / ni;
          if (band % 5 != 0 &&
              ((i + 1) * nj / ni != band || i + 1 == ni)) {
            south_out[band] =
                make_pencil<kAngles>(north_flux[band % nj] * 1.01);
          }
        }

        // --- forward the downstream edges -------------------------------
        if (has_down_x) {
          p.send(east_out, gy * grid.px + down_x, tag_of(direction, true));
        }
        if (has_down_y) {
          p.send(south_out, down_y * grid.px + gx, tag_of(direction, false));
        }
      }
    }

    // Sanity: the relaxation keeps phi bounded.
    for (const double v : phi) {
      OSIM_CHECK_MSG(std::isfinite(v) && v >= 0.0 && v < 10.0,
                     "sweep3d: flux out of range");
    }
  }
};

}  // namespace

const MiniApp& sweep3d_app() {
  static const Sweep3d app;
  return app;
}

}  // namespace osim::apps
