// POP (Parallel Ocean Program) mini-app.
//
// Jacobi-style diffusion of an ocean field on a 1-D ring decomposition with
// north/south halo exchange, plus the barotropic solver's global scalar
// reductions. Each halo element is a Pencil<16> column (depth levels /
// tracers), matching the real code's 192x128x20 grid whose halos carry a
// full depth column per surface point.
//
// Pattern shapes (paper Table II / Figure 5(c), POP rows):
//   * an initial slice of *independent work* that does not touch the
//     communicated data (visible as the empty leading band of Figure 5(c);
//     the paper measured consumption "nothing" = 3.5%);
//   * after the independent work the halos are consumed all at once in the
//     boundary-row stencil updates;
//   * production very late (the paper measured 95.5%): the new boundary
//     rows are packed into the send buffers only after the whole interior
//     update finishes.
//
// Numerics: symmetric diffusion on a doubly-periodic grid conserves the
// global field sum — verified by the tests.
#include <array>
#include <cmath>
#include <vector>

#include "apps/app.hpp"
#include "apps/pencil.hpp"
#include "common/expect.hpp"
#include "common/rng.hpp"

namespace osim::apps {

namespace {

constexpr std::size_t kDepth = 16;  // tracer/depth fields per halo column
using Column = Pencil<kDepth>;

class Pop final : public MiniApp {
 public:
  std::string name() const override { return "pop"; }
  std::string description() const override {
    return "ocean diffusion step: ring halo exchange + barotropic scalar "
           "allreduces";
  }
  std::int32_t paper_buses() const override { return 12; }
  std::string pattern_buffer() const override { return "halo_north"; }
  bool pattern_is_production() const override { return false; }

  void run(tracer::Process& p, const AppConfig& config) const override {
    const int rank = p.rank();
    const int size = p.size();
    const int north = (rank - 1 + size) % size;
    const int south = (rank + 1) % size;

    const std::size_t cols = 192u * static_cast<std::size_t>(config.scale);
    const std::size_t rows = 60;
    constexpr double kDiffusion = 0.15;

    osim::Rng rng(config.seed + static_cast<std::uint64_t>(rank));
    std::vector<double> u(rows * cols);
    for (double& v : u) v = rng.uniform(0.0, 1.0);
    std::vector<double> u_next(rows * cols, 0.0);

    auto halo_north = p.make_buffer<Column>(cols, "halo_north");
    auto halo_south = p.make_buffer<Column>(cols, "halo_south");
    auto north_out = p.make_buffer<Column>(cols, "north_out");
    auto south_out = p.make_buffer<Column>(cols, "south_out");

    double initial_sum_local = 0.0;
    for (const double v : u) initial_sum_local += v;

    // Model spin-up: the initial barotropic state is computed before the
    // first boundary exchange (keeps the first production interval
    // representative instead of degenerate).
    p.compute(400000);
    // Initial boundary-row exchange so the first step has valid halos.
    for (std::size_t c = 0; c < cols; ++c) {
      north_out[c] = make_pencil<kDepth>(u[c]);
      south_out[c] = make_pencil<kDepth>(u[(rows - 1) * cols + c]);
    }
    exchange(p, halo_north, halo_south, north_out, south_out, north, south);

    auto at = [cols](std::size_t r, std::size_t c) { return r * cols + c; };

    for (std::int32_t iter = 0; iter < config.iterations; ++iter) {
      // --- independent work: barotropic diagnostics, no halo access ------
      double local_energy = 0.0;
      for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; c += 8) {
          local_energy += u[at(r, c)] * u[at(r, c)];
        }
      }
      p.compute(90000);

      // --- boundary rows: consume the halos (all elements, early) --------
      for (std::size_t c = 0; c < cols; ++c) {
        const std::size_t left = (c + cols - 1) % cols;
        const std::size_t right = (c + 1) % cols;
        u_next[at(0, c)] =
            u[at(0, c)] +
            kDiffusion * (halo_north.load(c)[0] + u[at(1, c)] +
                          u[at(0, left)] + u[at(0, right)] -
                          4.0 * u[at(0, c)]);
        u_next[at(rows - 1, c)] =
            u[at(rows - 1, c)] +
            kDiffusion * (u[at(rows - 2, c)] + halo_south.load(c)[0] +
                          u[at(rows - 1, left)] + u[at(rows - 1, right)] -
                          4.0 * u[at(rows - 1, c)]);
        p.compute(24);
      }

      // --- interior update: the long compute phase ------------------------
      for (std::size_t r = 1; r + 1 < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
          const std::size_t left = (c + cols - 1) % cols;
          const std::size_t right = (c + 1) % cols;
          u_next[at(r, c)] =
              u[at(r, c)] +
              kDiffusion * (u[at(r - 1, c)] + u[at(r + 1, c)] +
                            u[at(r, left)] + u[at(r, right)] -
                            4.0 * u[at(r, c)]);
        }
        p.compute(220 * cols);
      }
      std::swap(u, u_next);

      // Barotropic reductions: the energy diagnostic and the step residual.
      const double energy =
          p.allreduce_scalar(local_energy, mpisim::Op::kSum);
      OSIM_CHECK(std::isfinite(energy));
      double local_delta = 0.0;
      for (std::size_t c = 0; c < cols; c += 16) {
        local_delta += std::fabs(u[at(rows / 2, c)]);
      }
      p.compute(cols / 8);
      (void)p.allreduce_scalar(local_delta, mpisim::Op::kSum);

      // --- boundary physics + pack: production spread over the last ~5%
      // of the phase (the paper's POP row: first part of the message final
      // at 95.5%, the whole at 99.99%).
      // (One pack loop per direction, as the real code packs each
      // neighbour's buffer separately.)
      for (std::size_t c = 0; c < cols; ++c) {
        p.compute(300);  // boundary-condition terms for this column
        north_out[c] = make_pencil<kDepth>(u[at(0, c)]);
      }
      for (std::size_t c = 0; c < cols; ++c) {
        p.compute(300);
        south_out[c] = make_pencil<kDepth>(u[at(rows - 1, c)]);
      }

      // --- halo exchange ---------------------------------------------------
      exchange(p, halo_north, halo_south, north_out, south_out, north,
               south);
    }

    // Symmetric diffusion on a doubly-periodic grid conserves the global
    // field sum; a broken halo exchange would show up here immediately.
    double final_sum_local = 0.0;
    for (const double v : u) final_sum_local += v;
    const double initial_sum =
        p.allreduce_scalar(initial_sum_local, mpisim::Op::kSum);
    const double final_sum =
        p.allreduce_scalar(final_sum_local, mpisim::Op::kSum);
    OSIM_CHECK_MSG(std::fabs(final_sum - initial_sum) <
                       1e-6 * (1.0 + std::fabs(initial_sum)),
                   "pop: diffusion failed to conserve the global sum");
  }

 private:
  static void exchange(tracer::Process& p,
                       tracer::TrackedBuffer<Column>& halo_north,
                       tracer::TrackedBuffer<Column>& halo_south,
                       const tracer::TrackedBuffer<Column>& north_out,
                       const tracer::TrackedBuffer<Column>& south_out,
                       int north, int south) {
    // My north boundary row becomes my north neighbour's south halo.
    tracer::Request from_north = p.irecv(halo_north, north, /*tag=*/1);
    tracer::Request from_south = p.irecv(halo_south, south, /*tag=*/0);
    p.send(north_out, north, /*tag=*/0);
    p.send(south_out, south, /*tag=*/1);
    std::array<tracer::Request, 2> reqs{std::move(from_north),
                                        std::move(from_south)};
    p.wait_all(reqs);
  }
};

}  // namespace

const MiniApp& pop_app() {
  static const Pop app;
  return app;
}

}  // namespace osim::apps
