// Mini-application framework.
//
// The paper's application pool — Sweep3D, POP, Alya, SPECFEM3D, NAS BT and
// NAS CG — is reproduced here as six mini-apps that keep the original
// codes' communication structure and production/consumption pattern shapes
// (Table II) while doing real, verifiable arithmetic. Every app is written
// against tracer::Process, so the whole pipeline (trace → overlap transform
// → replay → analysis) runs on it unmodified.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "tracer/process.hpp"
#include "tracer/tracer.hpp"

namespace osim::apps {

struct AppConfig {
  std::int32_t ranks = 16;
  std::int32_t iterations = 10;
  /// Problem-size multiplier: 1 = the default mini size. Buffer lengths and
  /// per-cell compute scale with it.
  std::int32_t scale = 1;
  std::uint64_t seed = 42;
};

class MiniApp {
 public:
  virtual ~MiniApp() = default;

  virtual std::string name() const = 0;
  virtual std::string description() const = 0;

  /// Rank body; called once per rank inside the traced runtime.
  virtual void run(tracer::Process& p, const AppConfig& config) const = 0;

  /// Bus count Table I of the paper reports for this application.
  virtual std::int32_t paper_buses() const = 0;

  /// Buffer whose access pattern Figure 5 plots (name as registered via
  /// make_buffer), and whether the plot is of stores (production) or loads
  /// (consumption). Empty name → no Figure 5 panel for this app.
  virtual std::string pattern_buffer() const { return ""; }
  virtual bool pattern_is_production() const { return true; }

  /// Rank counts the app supports (e.g. sweep3d wants a square grid).
  virtual bool supports_ranks(std::int32_t ranks) const { return ranks >= 2; }
};

/// All six paper applications, in the paper's Table I order.
const std::vector<const MiniApp*>& registry();

/// Lookup by name ("sweep3d", "pop", "alya", "specfem3d", "nas_bt",
/// "nas_cg"); nullptr when unknown.
const MiniApp* find_app(std::string_view name);

/// Runs the full tracing stage for one app: executes it on the in-process
/// MPI runtime with every rank traced, and returns the annotated trace
/// (plus access logs when requested).
tracer::TracedRun trace_app(const MiniApp& app, const AppConfig& config,
                            const tracer::TracerOptions& options = {});

}  // namespace osim::apps
