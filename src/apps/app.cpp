#include "apps/app.hpp"

#include "common/expect.hpp"
#include "common/strings.hpp"

namespace osim::apps {

const MiniApp& sweep3d_app();
const MiniApp& pop_app();
const MiniApp& alya_app();
const MiniApp& specfem3d_app();
const MiniApp& nas_bt_app();
const MiniApp& nas_cg_app();

const std::vector<const MiniApp*>& registry() {
  static const std::vector<const MiniApp*> apps = {
      &sweep3d_app(), &pop_app(),    &alya_app(),
      &specfem3d_app(), &nas_bt_app(), &nas_cg_app(),
  };
  return apps;
}

const MiniApp* find_app(std::string_view name) {
  for (const MiniApp* app : registry()) {
    if (app->name() == name) return app;
  }
  return nullptr;
}

tracer::TracedRun trace_app(const MiniApp& app, const AppConfig& config,
                            const tracer::TracerOptions& options) {
  if (!app.supports_ranks(config.ranks)) {
    throw Error(strprintf("app %s does not support %d ranks",
                          app.name().c_str(), config.ranks));
  }
  if (config.iterations <= 0) {
    throw Error("AppConfig::iterations must be positive");
  }
  return tracer::run_traced(
      config.ranks, options, app.name(),
      [&](tracer::Process& p) { app.run(p, config); });
}

}  // namespace osim::apps
