// NAS-CG mini-app.
//
// Conjugate gradient in a pipelined/fused formulation that follows the NPB
// CG communication structure: the matrix of each rank pair is column-split,
// so every iteration produces a partial result vector that is exchanged
// with the partner rank ("transpose exchange") and combined, plus two
// scalar allreduces per iteration for the dot products. The dot products
// are computed during the fused kernel and applied one iteration later
// (pipelined CG), which is what lets a single dominant loop both consume
// the received partial vector and produce the next one.
//
// Pattern shapes (paper Table II, NAS-CG row — the one application whose
// *measured* patterns are favourable for overlap):
//   * production ~linear (paper: 4.0 / 28.0 / 52.0 / 100): q_part[i] is
//     written row by row through the fused kernel;
//   * consumption ~linear (paper: 2.2 / 18.4 / 34.5): q_recv[i] is read row
//     by row through the same kernel.
//
// Numerics: a damped residual iteration on an SPD tridiagonal system; the
// tests verify the residual norm decreases.
#include <cmath>
#include <vector>

#include "apps/app.hpp"
#include "common/expect.hpp"
#include "common/rng.hpp"

namespace osim::apps {

namespace {

class NasCg final : public MiniApp {
 public:
  std::string name() const override { return "nas_cg"; }
  std::string description() const override {
    return "NPB CG (pipelined): partner exchange of matvec partial vectors "
           "+ dot-product allreduces";
  }
  std::int32_t paper_buses() const override { return 6; }
  std::string pattern_buffer() const override { return "q_part"; }
  bool pattern_is_production() const override { return true; }
  bool supports_ranks(std::int32_t ranks) const override {
    return ranks >= 2 && ranks % 2 == 0;
  }

  void run(tracer::Process& p, const AppConfig& config) const override {
    const int rank = p.rank();
    const int partner = rank ^ 1;
    const bool low_half = (rank % 2) == 0;
    const std::size_t n = 2400u * static_cast<std::size_t>(config.scale);
    const std::size_t half = n / 2;
    const std::size_t row_begin = low_half ? 0 : half;   // dot-product rows
    const std::size_t row_end = low_half ? half : n;
    const std::size_t col_begin = low_half ? 0 : half;   // matvec columns
    const std::size_t col_end = low_half ? half : n;

    // A = tridiag(-1, 4, -1): SPD. Both pair members keep the full x, r, p
    // redundantly; the matvec is column-split and reassembled via the
    // exchange.
    osim::Rng rng(config.seed + static_cast<std::uint64_t>(rank / 2));
    std::vector<double> bvec(n);
    for (double& v : bvec) v = rng.uniform(-1.0, 1.0);

    std::vector<double> x(n, 0.0);
    std::vector<double> r = bvec;  // r = b - A*0
    std::vector<double> pvec = r;

    auto q_part = p.make_buffer<double>(n, "q_part");
    auto q_recv = p.make_buffer<double>(n, "q_recv");

    // Column-split tridiagonal matvec row: sum over j in [col_begin,
    // col_end) with |i - j| <= 1.
    auto matvec_row = [&](std::size_t i) {
      double sum = 0.0;
      const std::size_t j_lo = i == 0 ? 0 : i - 1;
      const std::size_t j_hi = i + 1 < n ? i + 1 : n - 1;
      for (std::size_t j = j_lo; j <= j_hi; ++j) {
        if (j < col_begin || j >= col_end) continue;
        sum += ((i == j) ? 4.0 : -1.0) * pvec[j];
      }
      return sum;
    };

    // Iteration 0: compute the first partial result and exchange it.
    for (std::size_t i = 0; i < n; ++i) {
      q_part[i] = matvec_row(i);
      p.compute(300);
    }
    exchange(p, q_part, q_recv, partner);

    double rho = 0.0;
    for (std::size_t i = row_begin; i < row_end; ++i) rho += r[i] * r[i];
    p.compute(2 * half);
    rho = p.allreduce_scalar(rho, mpisim::Op::kSum);

    double alpha = 0.0;  // pipelined: applied one iteration behind
    double beta = 0.0;
    double initial_rr = rho;

    for (std::int32_t iter = 0; iter < config.iterations; ++iter) {
      // --- fused kernel: consume q_recv, update, produce next q_part -----
      // Row i: assemble q_i from both column halves, take the (lagged)
      // CG step, then compute the next partial matvec row — so the
      // received buffer is consumed linearly and the outgoing buffer is
      // produced linearly through this single dominant loop.
      double pq = 0.0;
      double rr = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        const double qi = q_part.load(i) + q_recv.load(i);
        r[i] -= alpha * qi;
        x[i] += alpha * pvec[i];
        pvec[i] = r[i] + beta * pvec[i];
        const double next_q = matvec_row(i);
        q_part[i] = next_q;
        if (i >= row_begin && i < row_end) {
          pq += pvec[i] * next_q;
          rr += r[i] * r[i];
        }
        p.compute(600);
      }

      // --- dot products for the next step (two scalar allreduces) --------
      pq = p.allreduce_scalar(pq, mpisim::Op::kSum);
      rr = p.allreduce_scalar(rr, mpisim::Op::kSum);
      // Damped step keeps the lagged iteration contractive.
      alpha = 0.5 * rr / pq;
      beta = 0.25 * rr / rho;
      rho = rr;

      // --- transpose exchange of the new partial result -------------------
      exchange(p, q_part, q_recv, partner);
    }

    double final_rr = 0.0;
    for (std::size_t i = 0; i < n; ++i) final_rr += r[i] * r[i];
    OSIM_CHECK_MSG(std::isfinite(final_rr) && final_rr < 4.0 * initial_rr,
                   "nas_cg: residual diverged");
  }

 private:
  static void exchange(tracer::Process& p,
                       tracer::TrackedBuffer<double>& q_part,
                       tracer::TrackedBuffer<double>& q_recv, int partner) {
    tracer::Request req = p.irecv(q_recv, partner, /*tag=*/0);
    p.send(q_part, partner, /*tag=*/0);
    p.wait(req);
  }
};

}  // namespace

const MiniApp& nas_cg_app() {
  static const NasCg app;
  return app;
}

}  // namespace osim::apps
