// Multi-field message elements.
//
// The production codes exchange messages whose unit elements are not single
// doubles: Sweep3D sends per-cell angle-flux pencils, POP halo rows carry a
// depth column of many tracers, SPECFEM3D interface DOFs have several
// components. Modelling an element as a fixed-size array keeps message
// sizes in the real codes' tens-of-kilobytes range (bandwidth-dominated,
// which is the regime the paper studies) without inflating the tracked
// access count.
#pragma once

#include <array>
#include <cstddef>

namespace osim::apps {

template <std::size_t K>
using Pencil = std::array<double, K>;

/// A pencil whose fields are simple harmonics of `value` — keeps every slot
/// deterministic and cheap to verify.
template <std::size_t K>
Pencil<K> make_pencil(double value) {
  Pencil<K> p;
  for (std::size_t k = 0; k < K; ++k) {
    p[k] = value * (1.0 + 0.125 * static_cast<double>(k));
  }
  return p;
}

}  // namespace osim::apps
