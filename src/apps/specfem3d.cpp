// SPECFEM3D mini-app.
//
// Explicit Newmark time stepping of a spectral-element wave solver on a
// ring of subdomains: each step computes internal forces, packs the shared
// interface degrees of freedom, sends them with nonblocking sends, and the
// neighbour assembles (sums) the received contributions immediately on
// arrival.
//
// Pattern shapes (paper Table II, SPECFEM3D rows):
//   * production very late (~95.3% measured): the interface accelerations
//     are only final after the full internal-force computation, and are
//     packed right before the sends;
//   * consumption immediate (~0.03% measured): the received contributions
//     are assembled in one pass directly after the receive.
//
// Numerics: a 1-D wave equation with nearest-neighbour coupling; the tests
// verify the scheme stays bounded and deterministic.
#include <array>
#include <cmath>
#include <vector>

#include "apps/app.hpp"
#include "apps/pencil.hpp"
#include "common/expect.hpp"
#include "common/rng.hpp"

namespace osim::apps {

namespace {

constexpr std::size_t kComponents = 8;  // displacement/velocity components
using Dof = Pencil<kComponents>;

class Specfem3d final : public MiniApp {
 public:
  std::string name() const override { return "specfem3d"; }
  std::string description() const override {
    return "spectral-element wave propagation: interface assembly on a ring "
           "with nonblocking sends";
  }
  std::int32_t paper_buses() const override { return 8; }
  std::string pattern_buffer() const override { return "iface_left_out"; }
  bool pattern_is_production() const override { return true; }

  void run(tracer::Process& p, const AppConfig& config) const override {
    const int rank = p.rank();
    const int size = p.size();
    const int left = (rank - 1 + size) % size;
    const int right = (rank + 1) % size;

    const std::size_t elements = 640u * static_cast<std::size_t>(config.scale);
    const std::size_t ngll = 4;  // points per element edge
    const std::size_t dofs = elements * ngll;
    const std::size_t iface = 480u * static_cast<std::size_t>(config.scale);
    constexpr double kDt = 0.05;
    constexpr double kStiffness = 0.8;

    osim::Rng rng(config.seed + static_cast<std::uint64_t>(rank));
    std::vector<double> disp(dofs);
    std::vector<double> vel(dofs, 0.0);
    std::vector<double> accel(dofs, 0.0);
    for (double& v : disp) v = 0.1 * rng.uniform(-1.0, 1.0);

    auto left_out = p.make_buffer<Dof>(iface, "iface_left_out");
    auto right_out = p.make_buffer<Dof>(iface, "iface_right_out");
    auto left_in = p.make_buffer<Dof>(iface, "iface_left_in");
    auto right_in = p.make_buffer<Dof>(iface, "iface_right_in");

    for (std::int32_t step = 0; step < config.iterations; ++step) {
      // --- Newmark predictor -------------------------------------------
      for (std::size_t i = 0; i < dofs; ++i) {
        disp[i] += kDt * vel[i] + 0.5 * kDt * kDt * accel[i];
        vel[i] += 0.5 * kDt * accel[i];
      }
      p.compute(8 * dofs);

      // --- internal forces: the dominant compute phase -------------------
      for (std::size_t e = 0; e < elements; ++e) {
        for (std::size_t g = 0; g < ngll; ++g) {
          const std::size_t i = e * ngll + g;
          const double left_d = i > 0 ? disp[i - 1] : disp[i];
          const double right_d = i + 1 < dofs ? disp[i + 1] : disp[i];
          accel[i] = -kStiffness * (2.0 * disp[i] - left_d - right_d);
        }
        p.compute(430 * ngll);
      }

      // --- boundary mass terms + pack: production spread over the last
      // ~5% of the phase (the paper's SPECFEM3D row: 95.3% .. 98.9%).
      // (One pack loop per neighbour, as the real code packs each
      // interface separately.)
      for (std::size_t k = 0; k < iface; ++k) {
        p.compute(55);  // interface mass-matrix scaling for this DOF
        left_out[k] = make_pencil<kComponents>(accel[k % dofs] * 0.5);
      }
      for (std::size_t k = 0; k < iface; ++k) {
        p.compute(55);
        right_out[k] =
            make_pencil<kComponents>(accel[dofs - 1 - (k % dofs)] * 0.5);
      }

      // --- nonblocking sends, blocking receives, immediate assembly ------
      tracer::Request send_left = p.isend(left_out, left, /*tag=*/2);
      tracer::Request send_right = p.isend(right_out, right, /*tag=*/3);
      p.recv(right_in, right, /*tag=*/2);   // neighbour's left interface
      p.recv(left_in, left, /*tag=*/3);     // neighbour's right interface
      for (std::size_t k = 0; k < iface; ++k) {
        accel[k % dofs] += left_in.load(k)[0] * 0.1;
        accel[dofs - 1 - (k % dofs)] += right_in.load(k)[0] * 0.1;
      }
      p.compute(4 * iface);
      std::array<tracer::Request, 2> sends{std::move(send_left),
                                           std::move(send_right)};
      p.wait_all(sends);

      // --- Newmark corrector ---------------------------------------------
      for (std::size_t i = 0; i < dofs; ++i) {
        vel[i] += 0.5 * kDt * accel[i];
      }
      p.compute(3 * dofs);
    }

    for (const double v : disp) {
      OSIM_CHECK_MSG(std::isfinite(v) && std::fabs(v) < 100.0,
                     "specfem3d: displacement diverged");
    }
  }
};

}  // namespace

const MiniApp& specfem3d_app() {
  static const Specfem3d app;
  return app;
}

}  // namespace osim::apps
