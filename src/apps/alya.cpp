// Alya (NASTIN incompressible Navier-Stokes) mini-app.
//
// The paper's note on Alya: "the instrumented kernel of Alya communicates
// mainly using MPI reduction collectives of length of one element, [so]
// these transfers cannot be chunked into partial ones". This mini-app
// reproduces that profile: a matrix-assembly compute phase, a one-element
// tracked exchange of a boundary coupling scalar (produced at ~99% of the
// phase, consumed right at the start of the next — the Table II Alya row),
// and a pressure-solver inner loop dominated by scalar allreduces.
//
// Numerics: damped Richardson relaxation of a local field; tests verify the
// residual decreases monotonically.
#include <cmath>
#include <vector>

#include "apps/app.hpp"
#include "common/expect.hpp"
#include "common/rng.hpp"

namespace osim::apps {

namespace {

class Alya final : public MiniApp {
 public:
  std::string name() const override { return "alya"; }
  std::string description() const override {
    return "NASTIN kernel: assembly + one-element boundary exchange + "
           "allreduce-dominated pressure loop";
  }
  std::int32_t paper_buses() const override { return 11; }
  // One-element transfers have no meaningful Figure 5 scatter panel.
  std::string pattern_buffer() const override { return "coupling"; }
  bool pattern_is_production() const override { return true; }

  void run(tracer::Process& p, const AppConfig& config) const override {
    const int rank = p.rank();
    const int size = p.size();
    const int left = (rank - 1 + size) % size;
    const int right = (rank + 1) % size;

    const std::size_t nodes = 2400u * static_cast<std::size_t>(config.scale);
    constexpr std::int32_t kPressureIters = 6;

    osim::Rng rng(config.seed + static_cast<std::uint64_t>(rank));
    std::vector<double> field(nodes);
    std::vector<double> forcing(nodes);
    for (std::size_t i = 0; i < nodes; ++i) {
      field[i] = rng.uniform(0.0, 1.0);
      forcing[i] = rng.uniform(0.0, 0.5);
    }

    auto coupling = p.make_buffer<double>(1, "coupling");
    auto coupling_in = p.make_buffer<double>(1, "coupling_in");
    coupling_in.raw()[0] = 0.0;

    double prev_residual = 0.0;
    for (std::int32_t iter = 0; iter < config.iterations; ++iter) {
      // --- consume the neighbour's coupling scalar right away -------------
      const double neighbour =
          iter == 0 ? 0.0 : coupling_in.load(0);

      // --- momentum assembly: the dominant compute phase ------------------
      double boundary_avg = 0.0;
      for (std::size_t i = 0; i < nodes; ++i) {
        const double laplacian =
            (i > 0 ? field[i - 1] : neighbour) +
            (i + 1 < nodes ? field[i + 1] : neighbour) - 2.0 * field[i];
        field[i] += 0.2 * (laplacian + forcing[i] - 0.1 * field[i]);
        boundary_avg += field[i];
      }
      p.compute(80 * nodes);
      boundary_avg /= static_cast<double>(nodes);

      // --- pressure solver: scalar-allreduce dominated inner loop ---------
      double residual = 0.0;
      for (std::int32_t inner = 0; inner < kPressureIters; ++inner) {
        double local_dot = 0.0;
        for (std::size_t i = 0; i < nodes; i += 4) {
          local_dot += field[i] * forcing[i];
        }
        p.compute(nodes / 2);
        const double dot = p.allreduce_scalar(local_dot, mpisim::Op::kSum);
        double local_norm = 0.0;
        for (std::size_t i = 0; i < nodes; i += 4) {
          local_norm += field[i] * field[i];
        }
        p.compute(nodes / 2);
        const double norm = p.allreduce_scalar(local_norm, mpisim::Op::kSum);
        residual = std::fabs(dot) / (1.0 + norm);
      }
      OSIM_CHECK(std::isfinite(residual));
      prev_residual = residual;

      // --- one-element boundary coupling exchange (~99% of the phase) -----
      coupling[0] = boundary_avg;
      tracer::Request req = p.irecv(coupling_in, left, /*tag=*/5);
      p.send(coupling, right, /*tag=*/5);
      p.wait(req);
    }
    OSIM_CHECK(std::isfinite(prev_residual));
  }
};

}  // namespace

const MiniApp& alya_app() {
  static const Alya app;
  return app;
}

}  // namespace osim::apps
