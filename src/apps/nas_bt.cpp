// NAS-BT mini-app.
//
// ADI (alternating direction implicit) style step: independent work, then
// four tight unpack passes over the received face data — the copy-in
// behaviour the paper shows in Figure 5(b) ("all the elements of the
// received buffer are loaded four times, each time in an extremely short
// interval, implying that the data is copied to some other location") —
// followed by the block line solves and a pack pass right before the send.
//
// Pattern shapes (paper Table II, NAS-BT rows):
//   * production ~99.1%: the send buffer is filled by a tight pack loop at
//     the very end of the phase;
//   * consumption after ~13.7% of independent work, then everything at
//     once — "patterns like these are extremely unfavorable for overlap".
//
// Numerics: each rank repeatedly solves tridiagonal systems with the Thomas
// algorithm; tests verify the solve against the explicit recurrence.
#include <cmath>
#include <vector>

#include "apps/app.hpp"
#include "apps/pencil.hpp"
#include "common/expect.hpp"
#include "common/rng.hpp"

namespace osim::apps {

namespace {

constexpr std::size_t kBlock = 8;  // 5x5 block entries, padded
using FaceCell = Pencil<kBlock>;

class NasBt final : public MiniApp {
 public:
  std::string name() const override { return "nas_bt"; }
  std::string description() const override {
    return "ADI line solves with copy-in/copy-out face exchange on a ring";
  }
  std::int32_t paper_buses() const override { return 22; }
  std::string pattern_buffer() const override { return "face_in"; }
  bool pattern_is_production() const override { return false; }

  void run(tracer::Process& p, const AppConfig& config) const override {
    const int rank = p.rank();
    const int size = p.size();
    const int prev = (rank - 1 + size) % size;
    const int next = (rank + 1) % size;

    const std::size_t n = 600u * static_cast<std::size_t>(config.scale);
    const std::size_t lines = 15;  // tridiagonal systems per step

    osim::Rng rng(config.seed + static_cast<std::uint64_t>(rank));
    std::vector<double> rhs(n);
    for (double& v : rhs) v = rng.uniform(0.0, 1.0);
    std::vector<double> solution(n, 0.0);
    // Scratch faces the unpack passes copy into (x/y/z/w directions).
    std::vector<std::vector<double>> faces(
        4, std::vector<double>(n, 0.0));

    auto face_in = p.make_buffer<FaceCell>(n, "face_in");
    auto face_out = p.make_buffer<FaceCell>(n, "face_out");

    // Initialization sweep before the pipeline is seeded (keeps the first
    // production interval representative instead of degenerate).
    p.compute(600000);
    // Seed the pipeline: everyone sends an initial face.
    for (std::size_t i = 0; i < n; ++i) {
      face_out[i] = make_pencil<kBlock>(rhs[i]);
    }
    tracer::Request seed = p.irecv(face_in, prev, /*tag=*/4);
    p.send(face_out, next, /*tag=*/4);
    p.wait(seed);

    for (std::int32_t iter = 0; iter < config.iterations; ++iter) {
      // --- independent work (~13.7% of the phase) -------------------------
      double checksum = 0.0;
      for (std::size_t i = 0; i < n; ++i) checksum += solution[i];
      p.compute(90000);
      OSIM_CHECK(std::isfinite(checksum));

      // --- four directional sweeps; each starts with a tight unpack pass
      // over the whole received face ("all the elements of the received
      // buffer are loaded four times, each time in an extremely short
      // interval" — the four vertical lines of Figure 5(b)).
      for (int pass = 0; pass < 4; ++pass) {
        for (std::size_t i = 0; i < n; ++i) {
          faces[static_cast<std::size_t>(pass)][i] =
              face_in.load(i)[0] * (1.0 + 0.25 * pass);
        }
        // Block line solves (Thomas algorithm) for this direction.
        for (std::size_t line = 0; line < lines / 4 + 1; ++line) {
          solve_line(faces[static_cast<std::size_t>(pass)], rhs, solution);
          p.compute(60 * n);
        }
        verify_solve(faces[static_cast<std::size_t>(pass)], rhs, solution);
      }

      // --- pack the outgoing face right before the send (~99%) ------------
      for (std::size_t i = 0; i < n; ++i) {
        face_out[i] = make_pencil<kBlock>(solution[i]);
      }

      // --- ring exchange ----------------------------------------------------
      tracer::Request req = p.irecv(face_in, prev, /*tag=*/4);
      p.send(face_out, next, /*tag=*/4);
      p.wait(req);
    }

    for (const double v : solution) {
      OSIM_CHECK_MSG(std::isfinite(v), "nas_bt: solution diverged");
    }
  }

  /// Residual check of the line solve: || tridiag(-1,4,-1) x - d || must be
  /// at round-off level, else the Thomas recursion is broken.
  static void verify_solve(const std::vector<double>& face,
                           const std::vector<double>& rhs,
                           const std::vector<double>& x) {
    const std::size_t n = rhs.size();
    double worst = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double d = rhs[i] + 0.1 * face[i];
      double ax = 4.0 * x[i];
      if (i > 0) ax -= x[i - 1];
      if (i + 1 < n) ax -= x[i + 1];
      worst = std::max(worst, std::fabs(ax - d));
    }
    OSIM_CHECK_MSG(worst < 1e-9, "nas_bt: Thomas solve residual too large");
  }

  /// Thomas algorithm for tridiag(-1, 4, -1) x = d, with d built from the
  /// face data and the right-hand side.
  static void solve_line(const std::vector<double>& face,
                         const std::vector<double>& rhs,
                         std::vector<double>& solution) {
    const std::size_t n = rhs.size();
    std::vector<double> c_prime(n, 0.0);
    std::vector<double> d_prime(n, 0.0);
    const double b = 4.0;
    const double a = -1.0;
    const double c = -1.0;
    c_prime[0] = c / b;
    d_prime[0] = (rhs[0] + 0.1 * face[0]) / b;
    for (std::size_t i = 1; i < n; ++i) {
      const double m = b - a * c_prime[i - 1];
      c_prime[i] = c / m;
      d_prime[i] = (rhs[i] + 0.1 * face[i] - a * d_prime[i - 1]) / m;
    }
    solution[n - 1] = d_prime[n - 1];
    for (std::size_t i = n - 1; i-- > 0;) {
      solution[i] = d_prime[i] - c_prime[i] * solution[i + 1];
    }
  }
};

}  // namespace

const MiniApp& nas_bt_app() {
  static const NasBt app;
  return app;
}

}  // namespace osim::apps
