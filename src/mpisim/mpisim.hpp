// In-process MPI-like runtime: each rank is a std::thread inside one
// process, exchanging real data through per-rank mailboxes.
//
// This substrate plays the role of the 64-node testbed execution in the
// paper: the tracer (src/tracer) observes applications running on it and
// extracts Dimemas traces. Timing is irrelevant here — the tracer keeps its
// own virtual clock — so sends use buffered (never-blocking) semantics,
// which also makes every correctly-matched program deadlock-free.
//
// Supported surface (the subset large scientific MPI codes actually use,
// per the LLNL MPI tutorial's "most MPI programs can be written using a
// dozen or less routines"):
//   * blocking send/recv with tags, MPI_ANY_SOURCE / MPI_ANY_TAG wildcards
//   * isend/irecv/wait/wait_all with Request objects
//   * sendrecv, probe / iprobe
//   * barrier, bcast, reduce, allreduce, gather, allgather, scatter,
//     alltoall, scan with sum/min/max/prod reduction ops
//
// Determinism: matching is deterministic for deterministic programs; the
// collectives are tree-based with fixed shapes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace osim::mpisim {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// Reduction operators for reduce/allreduce.
enum class Op : std::uint8_t { kSum, kMax, kMin, kProd };

struct Status {
  int source = -1;
  int tag = -1;
  std::size_t bytes = 0;
};

namespace detail {
struct RecvOp;
class Context;
}  // namespace detail

/// Handle for an outstanding immediate operation. Send requests are
/// complete on creation (buffered sends); receive requests complete when a
/// matching message has been delivered into the user buffer.
class Request {
 public:
  Request() = default;
  bool valid() const { return recv_ != nullptr || send_complete_; }

 private:
  friend class Comm;
  std::shared_ptr<detail::RecvOp> recv_;
  bool send_complete_ = false;
};

/// Per-rank communicator handle. Obtained inside Runtime::run's body;
/// not copyable, lives for the duration of the rank function.
class Comm {
 public:
  int rank() const { return rank_; }
  int size() const;

  // --- point-to-point (typed convenience over the byte-level core) ------
  template <typename T>
  void send(std::span<const T> data, int dest, int tag) {
    send_bytes(data.data(), data.size_bytes(), dest, tag);
  }
  template <typename T>
  Status recv(std::span<T> data, int src, int tag) {
    return recv_bytes(data.data(), data.size_bytes(), src, tag);
  }
  template <typename T>
  Request isend(std::span<const T> data, int dest, int tag) {
    return isend_bytes(data.data(), data.size_bytes(), dest, tag);
  }
  template <typename T>
  Request irecv(std::span<T> data, int src, int tag) {
    return irecv_bytes(data.data(), data.size_bytes(), src, tag);
  }
  template <typename T>
  Status sendrecv(std::span<const T> send_data, int dest, int send_tag,
                  std::span<T> recv_data, int src, int recv_tag) {
    Request r = irecv(recv_data, src, recv_tag);
    send(send_data, dest, send_tag);
    return wait(r);
  }

  Status wait(Request& request);
  void wait_all(std::span<Request> requests);

  /// Blocks until a matching message is available without receiving it.
  Status probe(int src, int tag);
  /// Non-blocking probe: returns the status of a matching pending message,
  /// or nullopt if none has arrived yet.
  std::optional<Status> iprobe(int src, int tag);

  // --- collectives --------------------------------------------------------
  void barrier();
  template <typename T>
  void bcast(std::span<T> data, int root) {
    bcast_bytes(data.data(), data.size_bytes(), root);
  }
  template <typename T>
  void reduce(std::span<const T> in, std::span<T> out, Op op, int root);
  template <typename T>
  void allreduce(std::span<const T> in, std::span<T> out, Op op);
  template <typename T>
  T allreduce_scalar(T value, Op op) {
    T out{};
    allreduce(std::span<const T>(&value, 1), std::span<T>(&out, 1), op);
    return out;
  }
  /// Root receives size()*in.size() elements in rank order.
  template <typename T>
  void gather(std::span<const T> in, std::span<T> out, int root);
  template <typename T>
  void allgather(std::span<const T> in, std::span<T> out);
  /// Root distributes in rank order; each rank receives out.size() elements.
  template <typename T>
  void scatter(std::span<const T> in, std::span<T> out, int root);
  /// in/out hold size() blocks of block elements each.
  template <typename T>
  void alltoall(std::span<const T> in, std::span<T> out, std::size_t block);
  /// Inclusive prefix reduction: out on rank r combines ranks 0..r.
  template <typename T>
  void scan(std::span<const T> in, std::span<T> out, Op op);

  // --- byte-level core ------------------------------------------------------
  void send_bytes(const void* data, std::size_t bytes, int dest, int tag);
  Status recv_bytes(void* data, std::size_t capacity, int src, int tag);
  Request isend_bytes(const void* data, std::size_t bytes, int dest, int tag);
  Request irecv_bytes(void* data, std::size_t capacity, int src, int tag);

  Comm(const Comm&) = delete;
  Comm& operator=(const Comm&) = delete;

 private:
  friend class Runtime;
  Comm(detail::Context* context, int rank) : context_(context), rank_(rank) {}

  /// Tag for internal collective traffic; phase < 16.
  int collective_tag(int phase);
  void bcast_bytes(void* data, std::size_t bytes, int root);
  template <typename T>
  void reduce_tree(std::span<const T> in, std::span<T> scratch, Op op,
                   int root, int tag);

  detail::Context* context_ = nullptr;
  int rank_ = -1;
  std::int64_t collective_seq_ = 0;
};

/// Entry point: runs `body` on `num_ranks` concurrent threads. If any rank
/// throws, the first exception is rethrown here after all threads join.
class Runtime {
 public:
  static void run(int num_ranks, const std::function<void(Comm&)>& body);
};

namespace detail {

template <typename T>
T apply_op(Op op, T a, T b) {
  switch (op) {
    case Op::kSum:
      return a + b;
    case Op::kMax:
      return a > b ? a : b;
    case Op::kMin:
      return a < b ? a : b;
    case Op::kProd:
      return a * b;
  }
  return a;
}

}  // namespace detail

// --- template implementations ---------------------------------------------

template <typename T>
void Comm::reduce_tree(std::span<const T> in, std::span<T> scratch, Op op,
                       int root, int tag) {
  // Binomial fan-in over virtual ranks relative to root. `scratch` holds
  // the running partial result (already seeded with `in` by the caller).
  const int p = size();
  const int vrank = (rank_ - root + p) % p;
  std::vector<T> incoming(in.size());
  int mask = 1;
  while (mask < p) {
    if ((vrank & mask) == 0) {
      const int child = vrank | mask;
      if (child < p) {
        recv(std::span<T>(incoming), (child + root) % p, tag);
        for (std::size_t i = 0; i < scratch.size(); ++i) {
          scratch[i] = detail::apply_op(op, scratch[i], incoming[i]);
        }
      }
    } else {
      const int parent = vrank & ~mask;
      send(std::span<const T>(scratch.data(), scratch.size()),
           (parent + root) % p, tag);
      break;
    }
    mask <<= 1;
  }
}

template <typename T>
void Comm::reduce(std::span<const T> in, std::span<T> out, Op op, int root) {
  const int tag = collective_tag(2);
  if (rank_ == root) {
    std::copy(in.begin(), in.end(), out.begin());
    reduce_tree(in, out, op, root, tag);
  } else {
    std::vector<T> scratch(in.begin(), in.end());
    reduce_tree(in, std::span<T>(scratch), op, root, tag);
  }
}

template <typename T>
void Comm::allreduce(std::span<const T> in, std::span<T> out, Op op) {
  reduce(in, out, op, 0);
  bcast(out, 0);
}

template <typename T>
void Comm::gather(std::span<const T> in, std::span<T> out, int root) {
  const int tag = collective_tag(3);
  const int p = size();
  if (rank_ == root) {
    std::copy(in.begin(), in.end(),
              out.begin() + static_cast<std::ptrdiff_t>(
                                in.size() * static_cast<std::size_t>(root)));
    for (int r = 0; r < p; ++r) {
      if (r == root) continue;
      recv(out.subspan(in.size() * static_cast<std::size_t>(r), in.size()),
           r, tag);
    }
  } else {
    send(in, root, tag);
  }
}

template <typename T>
void Comm::allgather(std::span<const T> in, std::span<T> out) {
  gather(in, out, 0);
  bcast(out, 0);
}

template <typename T>
void Comm::scatter(std::span<const T> in, std::span<T> out, int root) {
  const int tag = collective_tag(4);
  const int p = size();
  if (rank_ == root) {
    for (int r = 0; r < p; ++r) {
      const auto block =
          in.subspan(out.size() * static_cast<std::size_t>(r), out.size());
      if (r == root) {
        std::copy(block.begin(), block.end(), out.begin());
      } else {
        send(block, r, tag);
      }
    }
  } else {
    recv(out, root, tag);
  }
}

template <typename T>
void Comm::scan(std::span<const T> in, std::span<T> out, Op op) {
  // Linear chain: receive the prefix of ranks 0..rank-1, combine with the
  // local contribution, forward to rank+1.
  const int tag = collective_tag(6);
  std::copy(in.begin(), in.end(), out.begin());
  if (rank_ > 0) {
    std::vector<T> prefix(in.size());
    recv(std::span<T>(prefix), rank_ - 1, tag);
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] = detail::apply_op(op, prefix[i], out[i]);
    }
  }
  if (rank_ + 1 < size()) {
    send(std::span<const T>(out.data(), out.size()), rank_ + 1, tag);
  }
}

template <typename T>
void Comm::alltoall(std::span<const T> in, std::span<T> out,
                    std::size_t block) {
  const int tag = collective_tag(5);
  const int p = size();
  std::vector<Request> requests;
  requests.reserve(static_cast<std::size_t>(p));
  for (int i = 1; i < p; ++i) {
    const int src = (rank_ - i + p) % p;
    requests.push_back(
        irecv(out.subspan(block * static_cast<std::size_t>(src), block), src,
              tag));
  }
  const auto own = in.subspan(block * static_cast<std::size_t>(rank_), block);
  std::copy(own.begin(), own.end(),
            out.begin() +
                static_cast<std::ptrdiff_t>(block *
                                            static_cast<std::size_t>(rank_)));
  for (int i = 1; i < p; ++i) {
    const int dst = (rank_ + i) % p;
    send(in.subspan(block * static_cast<std::size_t>(dst), block), dst, tag);
  }
  wait_all(requests);
}

}  // namespace osim::mpisim
