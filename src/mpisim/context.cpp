#include "mpisim/context.hpp"

#include <cstring>

#include "common/expect.hpp"
#include "common/strings.hpp"

namespace osim::mpisim::detail {

Context::Context(int num_ranks) : num_ranks_(num_ranks) {
  OSIM_CHECK(num_ranks > 0);
  mailboxes_.reserve(static_cast<std::size_t>(num_ranks));
  for (int i = 0; i < num_ranks; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

bool Context::match(const RecvOp& op, int src, int tag) {
  if (op.src != kAnySource && op.src != src) return false;
  if (op.tag != kAnyTag && op.tag != tag) return false;
  return true;
}

void Context::deliver(int src, int dst, int tag, const void* data,
                      std::size_t bytes) {
  if (dst < 0 || dst >= num_ranks_) {
    throw Error(strprintf("send to invalid rank %d (size %d)", dst,
                          num_ranks_));
  }
  if (dst == src) throw Error("self-send is not supported");
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(dst)];
  std::unique_lock<std::mutex> lock(box.mu);
  for (auto it = box.pending.begin(); it != box.pending.end(); ++it) {
    RecvOp& op = **it;
    if (!match(op, src, tag)) continue;
    if (op.capacity < bytes) {
      throw Error(strprintf(
          "message truncation: %zu bytes sent from rank %d tag %d but "
          "receive buffer on rank %d holds %zu",
          bytes, src, tag, dst, op.capacity));
    }
    if (bytes > 0) std::memcpy(op.dest, data, bytes);
    op.status = Status{src, tag, bytes};
    op.done = true;
    box.pending.erase(it);
    lock.unlock();
    box.cv.notify_all();
    return;
  }
  Message msg;
  msg.src = src;
  msg.tag = tag;
  msg.payload.resize(bytes);
  if (bytes > 0) {
    std::memcpy(msg.payload.data(), data, bytes);
  }
  box.unexpected.push_back(std::move(msg));
  lock.unlock();
  box.cv.notify_all();  // wake blocked probes
}

std::shared_ptr<RecvOp> Context::post_recv(int dst_rank, int src, int tag,
                                           void* dest,
                                           std::size_t capacity) {
  if (src != kAnySource && (src < 0 || src >= num_ranks_)) {
    throw Error(strprintf("receive from invalid rank %d (size %d)", src,
                          num_ranks_));
  }
  if (src == dst_rank) throw Error("self-receive is not supported");
  auto op = std::make_shared<RecvOp>();
  op->src = src;
  op->tag = tag;
  op->dest = dest;
  op->capacity = capacity;

  Mailbox& box = *mailboxes_[static_cast<std::size_t>(dst_rank)];
  std::lock_guard<std::mutex> lock(box.mu);
  for (auto it = box.unexpected.begin(); it != box.unexpected.end(); ++it) {
    if (!match(*op, it->src, it->tag)) continue;
    if (capacity < it->payload.size()) {
      throw Error(strprintf(
          "message truncation: %zu bytes from rank %d tag %d but receive "
          "buffer on rank %d holds %zu",
          it->payload.size(), it->src, it->tag, dst_rank, capacity));
    }
    if (!it->payload.empty()) {
      std::memcpy(dest, it->payload.data(), it->payload.size());
    }
    op->status = Status{it->src, it->tag, it->payload.size()};
    op->done = true;
    box.unexpected.erase(it);
    return op;
  }
  box.pending.push_back(op);
  return op;
}

Status Context::wait_recv(int dst_rank, RecvOp& op) {
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(dst_rank)];
  std::unique_lock<std::mutex> lock(box.mu);
  box.cv.wait(lock, [&] { return op.done || aborted(); });
  check_abort_locked();
  return op.status;
}

std::optional<Status> Context::peek(int dst_rank, int src, int tag) {
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(dst_rank)];
  std::lock_guard<std::mutex> lock(box.mu);
  RecvOp probe_op;
  probe_op.src = src;
  probe_op.tag = tag;
  for (const Message& msg : box.unexpected) {
    if (match(probe_op, msg.src, msg.tag)) {
      return Status{msg.src, msg.tag, msg.payload.size()};
    }
  }
  return std::nullopt;
}

Status Context::wait_peek(int dst_rank, int src, int tag) {
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(dst_rank)];
  std::unique_lock<std::mutex> lock(box.mu);
  RecvOp probe_op;
  probe_op.src = src;
  probe_op.tag = tag;
  for (;;) {
    for (const Message& msg : box.unexpected) {
      if (match(probe_op, msg.src, msg.tag)) {
        return Status{msg.src, msg.tag, msg.payload.size()};
      }
    }
    check_abort_locked();
    box.cv.wait(lock);
  }
}

void Context::abort(const std::string& reason) {
  {
    std::lock_guard<std::mutex> lock(abort_mu_);
    if (aborted_) return;  // first failure wins
    aborted_ = true;
    abort_reason_ = reason;
  }
  for (auto& box : mailboxes_) {
    std::lock_guard<std::mutex> lock(box->mu);
    box->cv.notify_all();
  }
}

bool Context::aborted() const {
  std::lock_guard<std::mutex> lock(abort_mu_);
  return aborted_;
}

void Context::check_abort_locked() const {
  std::lock_guard<std::mutex> lock(abort_mu_);
  if (aborted_) {
    throw Error("mpisim run aborted: " + abort_reason_);
  }
}

}  // namespace osim::mpisim::detail
