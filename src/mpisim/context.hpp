// Internal machinery of the in-process MPI runtime: per-rank mailboxes with
// MPI-ordered matching between arriving messages and posted receives.
#pragma once

#include <condition_variable>
#include <optional>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "mpisim/mpisim.hpp"

namespace osim::mpisim::detail {

struct Message {
  int src = -1;
  int tag = 0;
  std::vector<std::byte> payload;
};

struct RecvOp {
  int src = kAnySource;  // requested source (may be wildcard)
  int tag = kAnyTag;     // requested tag (may be wildcard)
  void* dest = nullptr;
  std::size_t capacity = 0;
  bool done = false;
  Status status;
};

struct Mailbox {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Message> unexpected;                 // arrival order
  std::deque<std::shared_ptr<RecvOp>> pending;    // post order
};

class Context {
 public:
  explicit Context(int num_ranks);

  int size() const { return num_ranks_; }

  /// Buffered send: copies into the destination mailbox (or directly into a
  /// matching posted receive) and returns immediately.
  void deliver(int src, int dst, int tag, const void* data,
               std::size_t bytes);

  /// Posts a receive on `dst_rank`'s mailbox; may complete immediately
  /// against an unexpected message.
  std::shared_ptr<RecvOp> post_recv(int dst_rank, int src, int tag,
                                    void* dest, std::size_t capacity);

  /// Blocks until `op` completes (or the runtime aborts). `dst_rank` is the
  /// rank whose mailbox `op` was posted to.
  Status wait_recv(int dst_rank, RecvOp& op);

  /// Non-consuming peek at `dst_rank`'s unexpected queue; nullopt when no
  /// matching message has arrived.
  std::optional<Status> peek(int dst_rank, int src, int tag);

  /// Blocks until a matching message is available on `dst_rank`'s mailbox
  /// without consuming it.
  Status wait_peek(int dst_rank, int src, int tag);

  /// Marks the run as failed; wakes every waiter so threads can unwind.
  void abort(const std::string& reason);
  bool aborted() const;

 private:
  static bool match(const RecvOp& op, int src, int tag);
  void check_abort_locked() const;

  const int num_ranks_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  mutable std::mutex abort_mu_;
  bool aborted_ = false;
  std::string abort_reason_;
};

}  // namespace osim::mpisim::detail
