#include <algorithm>
#include <thread>

#include "common/expect.hpp"
#include "common/strings.hpp"
#include "mpisim/context.hpp"
#include "mpisim/mpisim.hpp"

namespace osim::mpisim {

int Comm::size() const { return context_->size(); }

void Comm::send_bytes(const void* data, std::size_t bytes, int dest,
                      int tag) {
  context_->deliver(rank_, dest, tag, data, bytes);
}

Status Comm::recv_bytes(void* data, std::size_t capacity, int src, int tag) {
  auto op = context_->post_recv(rank_, src, tag, data, capacity);
  // wait_recv synchronizes on the mailbox mutex; an unlocked op->done
  // fast path here would race with a concurrent deliver().
  return context_->wait_recv(rank_, *op);
}

Request Comm::isend_bytes(const void* data, std::size_t bytes, int dest,
                          int tag) {
  // Buffered semantics: the payload is copied out immediately, so the
  // request is trivially complete (see file comment in mpisim.hpp).
  context_->deliver(rank_, dest, tag, data, bytes);
  Request request;
  request.send_complete_ = true;
  return request;
}

Request Comm::irecv_bytes(void* data, std::size_t capacity, int src,
                          int tag) {
  Request request;
  request.recv_ = context_->post_recv(rank_, src, tag, data, capacity);
  return request;
}

Status Comm::wait(Request& request) {
  OSIM_CHECK_MSG(request.valid(), "wait on an empty Request");
  if (request.recv_ == nullptr) {
    request.send_complete_ = false;  // consumed
    return Status{};
  }
  auto op = std::move(request.recv_);
  return context_->wait_recv(rank_, *op);
}

void Comm::wait_all(std::span<Request> requests) {
  for (Request& request : requests) {
    if (request.valid()) wait(request);
  }
}

Status Comm::probe(int src, int tag) {
  return context_->wait_peek(rank_, src, tag);
}

std::optional<Status> Comm::iprobe(int src, int tag) {
  return context_->peek(rank_, src, tag);
}

int Comm::collective_tag(int phase) {
  OSIM_CHECK(phase >= 0 && phase < 16);
  // Internal tags are <= -2 so they can never collide with application tags
  // (>= 0) or the kAnyTag wildcard (-1). All ranks must call collectives in
  // the same order, so the per-rank sequence numbers agree.
  const std::int64_t seq = collective_seq_++;
  OSIM_CHECK_MSG(seq < (std::int64_t{1} << 26),
                 "too many collectives for the internal tag space");
  return static_cast<int>(-2 - (seq * 16 + phase));
}

void Comm::barrier() {
  const int tag = collective_tag(0);
  const int p = size();
  // Binomial fan-in to rank 0, then fan-out, with empty payloads.
  int mask = 1;
  while (mask < p) {
    if ((rank_ & mask) == 0) {
      const int child = rank_ | mask;
      if (child < p) recv_bytes(nullptr, 0, child, tag);
    } else {
      send_bytes(nullptr, 0, rank_ & ~mask, tag);
      break;
    }
    mask <<= 1;
  }
  // Fan-out: mirror of the fan-in tree rooted at 0.
  if (rank_ != 0) {
    int parent_mask = 1;
    while ((rank_ & parent_mask) == 0) parent_mask <<= 1;
    recv_bytes(nullptr, 0, rank_ & ~parent_mask, tag);
    mask = parent_mask >> 1;
  } else {
    mask = 1;
    while (mask < p) mask <<= 1;
    mask >>= 1;
  }
  for (; mask > 0; mask >>= 1) {
    const int child = rank_ | mask;
    if (child < p && child != rank_) send_bytes(nullptr, 0, child, tag);
  }
}

void Comm::bcast_bytes(void* data, std::size_t bytes, int root) {
  const int tag = collective_tag(1);
  const int p = size();
  const int vrank = (rank_ - root + p) % p;
  int mask = 1;
  while (mask < p) {
    if (vrank & mask) {
      const int parent = vrank & ~mask;
      recv_bytes(data, bytes, (parent + root) % p, tag);
      break;
    }
    mask <<= 1;
  }
  if (vrank == 0) {
    mask = 1;
    while (mask < p) mask <<= 1;
  }
  mask >>= 1;
  for (; mask > 0; mask >>= 1) {
    const int child = vrank | mask;
    if (child < p && child != vrank) {
      send_bytes(data, bytes, (child + root) % p, tag);
    }
  }
}

void Runtime::run(int num_ranks, const std::function<void(Comm&)>& body) {
  OSIM_CHECK(num_ranks > 0);
  detail::Context context(num_ranks);

  std::mutex error_mu;
  std::string first_error;

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(num_ranks));
  for (int r = 0; r < num_ranks; ++r) {
    threads.emplace_back([&, r] {
      Comm comm(&context, r);
      try {
        body(comm);
      } catch (const std::exception& e) {
        {
          std::lock_guard<std::mutex> lock(error_mu);
          if (first_error.empty()) {
            first_error = strprintf("rank %d: %s", r, e.what());
          }
        }
        context.abort(e.what());
      }
    });
  }
  for (auto& thread : threads) thread.join();
  if (!first_error.empty()) {
    throw Error("mpisim: " + first_error);
  }
}

}  // namespace osim::mpisim
