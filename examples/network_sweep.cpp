// Example: studying overlap across network configurations.
//
// "Dimemas allows us to simulate various network configurations, so we can
// evaluate the impact of overlapping on future networks" (§V). This example
// replays NAS-CG's original and overlapped traces across a grid of
// bandwidths and latencies and prints the speedup surface: overlap matters
// most where transfers are slow relative to compute, and fades away on
// overprovisioned networks.
//
// Build & run:  ./build/examples/network_sweep [--ranks N] [--app NAME]
#include <cstdio>
#include <vector>

#include "analysis/bandwidth.hpp"
#include "apps/app.hpp"
#include "common/flags.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "dimemas/replay.hpp"
#include "overlap/transform.hpp"

int main(int argc, char** argv) try {
  using namespace osim;
  std::int64_t ranks = 8;
  std::int64_t iterations = 5;
  std::string app_name = "nas_cg";
  Flags flags("speedup of overlap across bandwidth/latency configurations");
  flags.add("ranks", &ranks, "MPI ranks to simulate");
  flags.add("iterations", &iterations, "application iterations");
  flags.add("app", &app_name, "application to study");
  if (!flags.parse(argc, argv)) return 0;

  const apps::MiniApp* app = apps::find_app(app_name);
  if (app == nullptr) throw Error("unknown app: " + app_name);
  apps::AppConfig config;
  config.ranks = static_cast<std::int32_t>(ranks);
  while (!app->supports_ranks(config.ranks)) ++config.ranks;
  config.iterations = static_cast<std::int32_t>(iterations);

  const tracer::TracedRun traced = apps::trace_app(*app, config);
  const trace::Trace original = overlap::lower_original(traced.annotated);
  const trace::Trace overlapped = overlap::transform(traced.annotated, {});

  const std::vector<double> bandwidths{25, 50, 100, 250, 500, 1000, 4000};
  const std::vector<double> latencies{1.0, 4.0, 16.0, 64.0};

  std::vector<std::string> header{"latency \\ MB/s"};
  for (const double bw : bandwidths) header.push_back(cell(bw, 4));
  TextTable table(header);
  table.set_title("overlap speedup (T_original / T_overlapped) for " +
                  app->name());

  for (const double latency : latencies) {
    std::vector<std::string> row{strprintf("%g us", latency)};
    for (const double bw : bandwidths) {
      dimemas::Platform p =
          dimemas::Platform::marenostrum(config.ranks, app->paper_buses());
      p.bandwidth_MBps = bw;
      p.latency_us = latency;
      const double t_orig = dimemas::replay(original, p).makespan;
      const double t_ovlp = dimemas::replay(overlapped, p).makespan;
      row.push_back(cell(t_orig / t_ovlp, 4));
    }
    table.add_row(row);
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "reading: >1 means overlap wins; the benefit concentrates where the "
      "network is slow relative to computation.\n");
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
