// Reproduces the paper's Figures 1 and 2 conceptually: a two-rank
// producer/consumer where process A produces a four-element message while
// process B consumes the previous one. The non-overlapped execution
// serializes production, transfer and consumption; the overlapped execution
// splits the message into four chunks, sends each as soon as it is produced
// and waits for each only when it is consumed.
//
// Build & run:  ./build/examples/mechanism_illustration
#include <cstdio>

#include "dimemas/replay.hpp"
#include "overlap/transform.hpp"
#include "paraver/paraver.hpp"
#include "tracer/tracer.hpp"

int main() try {
  using namespace osim;

  // The Figure 1/2 setup: A produces p0..p3 (one long phase each), then
  // sends; B consumes c0..c3 of the message it received last iteration.
  constexpr std::size_t kElements = 4;
  constexpr std::uint64_t kPhase = 400'000;  // instructions per element
  constexpr int kIterations = 3;

  const tracer::TracedRun traced = tracer::run_traced(
      2, {}, "figure2", [&](tracer::Process& p) {
        auto buffer = p.make_buffer<double>(kElements, "message");
        if (p.rank() == 0) {
          // Process A: produce element i during phase Tp_i, send the whole
          // message at the end of the iteration.
          for (int iter = 0; iter < kIterations; ++iter) {
            for (std::size_t i = 0; i < kElements; ++i) {
              p.compute(kPhase);  // Tp_i
              buffer[i] = static_cast<double>(iter) + 0.25 * i;
            }
            p.send(buffer, 1, 0);
          }
        } else {
          // Process B: receive, then consume element i during phase Tc_i.
          for (int iter = 0; iter < kIterations; ++iter) {
            p.recv(buffer, 0, 0);
            for (std::size_t i = 0; i < kElements; ++i) {
              const double v = buffer.load(i);
              p.compute(kPhase);  // Tc_i
              if (v < -1.0) return;  // (keeps the load observable)
            }
          }
        }
      });

  // A slow network makes the transfer delays visible, as in the figures.
  dimemas::Platform platform;
  platform.num_nodes = 2;
  platform.bandwidth_MBps = 10.0;  // deliberately slow
  platform.latency_us = 20.0;
  // The whole 32-byte message is eager either way; use chunks of one
  // element, exactly as Figure 2 draws them.
  overlap::OverlapOptions options;
  options.chunks = 4;

  dimemas::ReplayOptions replay_options;
  replay_options.record_timeline = true;
  const auto original = dimemas::replay(
      overlap::lower_original(traced.annotated), platform, replay_options);
  const auto overlapped = dimemas::replay(
      overlap::transform(traced.annotated, options), platform,
      replay_options);

  paraver::AsciiOptions ascii;
  ascii.width = 100;
  ascii.show_stats = false;
  std::printf("%s\n",
              paraver::render_comparison(
                  original, "Figure 1: non-overlapped (produce all, send, "
                            "consume all)",
                  overlapped,
                  "Figure 2: overlapped (chunked, advanced, postponed)",
                  ascii)
                  .c_str());
  std::printf(
      "The overlapped run hides each chunk's transfer behind the production "
      "of the\nfollowing chunks (sender) and the consumption of the "
      "preceding chunks (receiver):\n  %.3f ms -> %.3f ms (%.1f%% faster)\n",
      original.makespan * 1e3, overlapped.makespan * 1e3,
      100.0 * (1.0 - overlapped.makespan / original.makespan));
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
