// Example: a guided study of the four overlap mechanisms on a halo-exchange
// code (POP), toggling each mechanism independently — message chunking,
// advancing sends, post-postponing receptions, and double buffering — and
// showing the timeline of the best configuration against the original.
//
// Build & run:  ./build/examples/halo_overlap_study [--ranks N]
#include <cstdio>

#include "apps/app.hpp"
#include "common/flags.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "dimemas/replay.hpp"
#include "overlap/transform.hpp"
#include "paraver/paraver.hpp"

int main(int argc, char** argv) try {
  using namespace osim;
  std::int64_t ranks = 8;
  std::int64_t iterations = 4;
  Flags flags("per-mechanism overlap study on the POP halo exchange");
  flags.add("ranks", &ranks, "MPI ranks to simulate");
  flags.add("iterations", &iterations, "time steps");
  if (!flags.parse(argc, argv)) return 0;

  const apps::MiniApp* app = apps::find_app("pop");
  apps::AppConfig config;
  config.ranks = static_cast<std::int32_t>(ranks);
  config.iterations = static_cast<std::int32_t>(iterations);
  const tracer::TracedRun traced = apps::trace_app(*app, config);
  const dimemas::Platform platform =
      dimemas::Platform::marenostrum(config.ranks, app->paper_buses());

  const trace::Trace original = overlap::lower_original(traced.annotated);
  const double t_original = dimemas::replay(original, platform).makespan;

  struct Variant {
    const char* name;
    overlap::OverlapOptions options;
  };
  overlap::OverlapOptions all;
  overlap::OverlapOptions no_advance = all;
  no_advance.advance_sends = false;
  overlap::OverlapOptions no_postpone = all;
  no_postpone.postpone_receptions = false;
  overlap::OverlapOptions no_chunking = all;
  no_chunking.chunking = false;
  overlap::OverlapOptions no_double_buffer = all;
  no_double_buffer.double_buffering = false;
  overlap::OverlapOptions ideal = all;
  ideal.pattern = overlap::PatternMode::kIdeal;

  const Variant variants[] = {
      {"all mechanisms (paper)", all},
      {"without advancing sends", no_advance},
      {"without postponed receptions", no_postpone},
      {"without chunking (whole message)", no_chunking},
      {"without double buffering", no_double_buffer},
      {"all mechanisms, ideal patterns", ideal},
  };

  TextTable table({"configuration", "time", "speedup vs original"});
  table.set_title(
      strprintf("POP halo exchange on %d ranks (original: %s)",
                config.ranks, format_seconds(t_original).c_str()));
  for (const Variant& variant : variants) {
    const trace::Trace t =
        overlap::transform(traced.annotated, variant.options);
    const double time = dimemas::replay(t, platform).makespan;
    table.add_row({variant.name, format_seconds(time),
                   cell(t_original / time, 4)});
  }
  std::printf("%s\n", table.render().c_str());

  // Show the stacked timelines for the ideal-pattern configuration.
  dimemas::ReplayOptions replay_options;
  replay_options.record_timeline = true;
  const auto run_a = dimemas::replay(original, platform, replay_options);
  const auto run_b = dimemas::replay(
      overlap::transform(traced.annotated, ideal), platform, replay_options);
  paraver::AsciiOptions ascii;
  ascii.width = 96;
  ascii.show_stats = false;
  std::printf("%s\n",
              paraver::render_comparison(run_a, "original", run_b,
                                         "overlapped (ideal patterns)",
                                         ascii)
                  .c_str());
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
