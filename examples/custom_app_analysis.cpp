// Example: analyzing YOUR OWN application with the framework.
//
// The paper's pitch is that the pipeline is automatic — you don't need to
// restructure your code to learn what overlap would buy you. This example
// writes a small custom MPI application (a 1-D heat solver with halo
// exchange) against the instrumented API, then runs the entire study on
// it: Table II-style pattern statistics, speedup under measured and ideal
// patterns, and the bandwidth relaxation.
//
// Build & run:  ./build/examples/custom_app_analysis [--ranks N]
#include <cstdio>
#include <vector>

#include "analysis/bandwidth.hpp"
#include "analysis/patterns.hpp"
#include "analysis/speedup.hpp"
#include "common/flags.hpp"
#include "common/table.hpp"
#include "overlap/transform.hpp"
#include "pipeline/context.hpp"
#include "pipeline/study.hpp"
#include "tracer/tracer.hpp"

namespace {

// A user application: explicit 1-D heat diffusion, ring decomposition,
// one halo cell per side packed into a tracked buffer.
void heat_solver(osim::tracer::Process& p) {
  const int rank = p.rank();
  const int size = p.size();
  const int left = (rank - 1 + size) % size;
  const int right = (rank + 1) % size;
  const std::size_t n = 4096;
  const int steps = 6;

  std::vector<double> u(n, 0.0);
  u[n / 2] = 1000.0;  // heat spike

  // Edge buffers carry a strip of cells (realistically sized messages).
  const std::size_t strip = 512;
  auto left_out = p.make_buffer<double>(strip, "left_out");
  auto right_out = p.make_buffer<double>(strip, "right_out");
  auto left_in = p.make_buffer<double>(strip, "left_in");
  auto right_in = p.make_buffer<double>(strip, "right_in");
  for (std::size_t i = 0; i < strip; ++i) {
    left_out[i] = u[i];
    right_out[i] = u[n - strip + i];
    left_in.raw()[i] = 0.0;
    right_in.raw()[i] = 0.0;
  }

  for (int step = 0; step < steps; ++step) {
    // Exchange edge strips with both neighbours.
    osim::tracer::Request from_left = p.irecv(left_in, left, 0);
    osim::tracer::Request from_right = p.irecv(right_in, right, 1);
    p.send(right_out, right, 0);
    p.send(left_out, left, 1);
    std::array<osim::tracer::Request, 2> reqs{std::move(from_left),
                                              std::move(from_right)};
    p.wait_all(reqs);

    // Consume the halos while updating the edges, then the interior.
    for (std::size_t i = 0; i < strip; ++i) {
      u[i] += 0.1 * (left_in.load(i) - u[i]);
      u[n - strip + i] += 0.1 * (right_in.load(i) - u[i]);
    }
    p.compute(8 * strip);
    for (std::size_t i = 1; i + 1 < n; ++i) {
      u[i] += 0.25 * (u[i - 1] + u[i + 1] - 2.0 * u[i]);
    }
    p.compute(12 * n);

    // Produce the next strips (late production, like most BSP codes).
    for (std::size_t i = 0; i < strip; ++i) {
      left_out[i] = u[i];
      right_out[i] = u[n - strip + i];
    }
  }
}

}  // namespace

int main(int argc, char** argv) try {
  std::int64_t ranks = 8;
  osim::Flags flags("analyze a custom application with the overlap pipeline");
  flags.add("ranks", &ranks, "MPI ranks to simulate");
  if (!flags.parse(argc, argv)) return 0;

  // 1. Trace it (this actually runs the solver on threads).
  const osim::tracer::TracedRun traced = osim::tracer::run_traced(
      static_cast<std::int32_t>(ranks), {}, "heat", heat_solver);

  // 2. Where in the phase is the data produced/consumed?
  const auto prod = osim::analysis::production_stats(traced.annotated);
  const auto cons = osim::analysis::consumption_stats(traced.annotated);
  osim::TextTable table({"metric", "1st/nothing", "quarter", "half"});
  table.set_title("heat solver: measured patterns (fraction of phase)");
  table.add_row({"production", osim::cell_percent(prod.first_element),
                 osim::cell_percent(prod.quarter),
                 osim::cell_percent(prod.half)});
  table.add_row({"consumption", osim::cell_percent(cons.nothing),
                 osim::cell_percent(cons.quarter),
                 osim::cell_percent(cons.half)});
  std::printf("%s\n", table.render().c_str());

  // 3. What would overlap buy on a Marenostrum-class network?
  const auto platform = osim::dimemas::Platform::marenostrum(
      static_cast<std::int32_t>(ranks), 12);
  osim::pipeline::Study study;  // add {.jobs = N} to evaluate in parallel
  const auto outcome =
      osim::analysis::evaluate_overlap(study, traced.annotated, platform);
  std::printf("speedup with measured patterns: %.3f\n",
              outcome.speedup_real());
  std::printf("speedup with ideal patterns:    %.3f\n",
              outcome.speedup_ideal());

  // 4. How much cheaper could the network be?
  const auto original = osim::overlap::lower_original(traced.annotated);
  const auto overlapped = osim::overlap::transform(traced.annotated, {});
  const auto relaxed = osim::analysis::relaxed_bandwidth(
      study, osim::pipeline::ReplayContext(original, platform),
      osim::pipeline::ReplayContext(overlapped, platform));
  if (relaxed) {
    std::printf(
        "bandwidth relaxation: the overlapped run matches the original's "
        "performance at %.4g MB/s (nominal %.4g MB/s)\n",
        *relaxed, platform.bandwidth_MBps);
  } else {
    std::printf("bandwidth relaxation: not reachable (overlap loses here)\n");
  }
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
