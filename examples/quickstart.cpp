// Quickstart: the full pipeline on one application in ~40 lines.
//
//   1. trace   — run the NAS-CG mini-app on the in-process MPI runtime with
//                every rank instrumented (the Valgrind stage);
//   2. lower   — produce the original trace and the two overlapped traces
//                (measured and ideal patterns);
//   3. replay  — reconstruct each execution on a Marenostrum-like platform
//                (the Dimemas stage);
//   4. inspect — print the stacked timelines (the Paraver stage) and the
//                headline speedups.
//
// Build & run:  ./build/examples/quickstart [--ranks N] [--iterations N]
//                                           [--jobs N]
#include <cstdio>

#include "analysis/speedup.hpp"
#include "apps/app.hpp"
#include "common/flags.hpp"
#include "overlap/transform.hpp"
#include "paraver/paraver.hpp"
#include "pipeline/context.hpp"
#include "pipeline/scenario.hpp"
#include "pipeline/study.hpp"

int main(int argc, char** argv) try {
  std::int64_t ranks = 4;
  std::int64_t iterations = 5;
  std::int64_t jobs = 1;
  osim::Flags flags("overlapsim quickstart: trace, transform, replay NAS-CG");
  flags.add("ranks", &ranks, "MPI ranks to simulate");
  flags.add("iterations", &iterations, "CG iterations");
  flags.add("jobs", &jobs,
            "parallel replay jobs (0 = one per hardware thread)");
  if (!flags.parse(argc, argv)) return 0;

  const osim::apps::MiniApp* app = osim::apps::find_app("nas_cg");
  osim::apps::AppConfig config;
  config.ranks = static_cast<std::int32_t>(ranks);
  config.iterations = static_cast<std::int32_t>(iterations);

  // 1. Trace the application (runs it for real, on threads).
  const osim::tracer::TracedRun traced = osim::apps::trace_app(*app, config);
  std::printf("traced %s on %d ranks: %zu events on rank 0\n",
              app->name().c_str(), config.ranks,
              traced.annotated.ranks[0].events.size());

  // 2. Lower to the original and overlapped traces.
  const osim::trace::Trace original =
      osim::overlap::lower_original(traced.annotated);
  osim::overlap::OverlapOptions options;  // 4 chunks, all mechanisms on
  const osim::trace::Trace overlapped =
      osim::overlap::transform(traced.annotated, options);

  // 3. Replay both on the paper's test-bed platform. The contexts validate
  //    the traces once up front; run_scenario performs the Dimemas replay.
  const osim::dimemas::Platform platform =
      osim::dimemas::Platform::marenostrum(config.ranks, app->paper_buses());
  osim::dimemas::ReplayOptions replay_options;
  replay_options.record_timeline = true;
  const auto run_original = osim::pipeline::run_scenario(
      osim::pipeline::ReplayContext(original, platform, replay_options));
  const auto run_overlapped = osim::pipeline::run_scenario(
      osim::pipeline::ReplayContext(overlapped, platform, replay_options));

  // 4. Visualize and summarize.
  osim::paraver::AsciiOptions ascii;
  ascii.width = 90;
  std::printf("%s\n",
              osim::paraver::render_comparison(run_original, "non-overlapped",
                                               run_overlapped, "overlapped",
                                               ascii)
                  .c_str());
  osim::pipeline::StudyOptions study_options;
  study_options.jobs = static_cast<int>(jobs);
  osim::pipeline::Study study(study_options);
  const auto outcome = osim::analysis::evaluate_overlap(
      study, traced.annotated, platform, options);
  std::printf("speedup (measured patterns): %.3f\n", outcome.speedup_real());
  std::printf("speedup (ideal patterns):    %.3f\n", outcome.speedup_ideal());
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
