#!/usr/bin/env python3
"""CI perf gate: compare osim_perf medians against the committed budget.

    perf_gate.py [--bench BENCH_replay.json] [--budget bench/perf_budget.json]

Reads the BENCH_replay.json produced by `osim_perf` and the floors in
bench/perf_budget.json. Every path in the budget must be present in the
bench record, report the same unit, and have a median at or above its
floor. Exit 0 when everything passes, 1 on any violation, 2 on malformed
input. The floors are intentionally generous (about 8x below a small
reference machine) -- this gate exists to catch order-of-magnitude
regressions such as an accidental O(n^2) in the replay loop, not to
referee noisy CI runners.
"""

import argparse
import json
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench", default="BENCH_replay.json")
    parser.add_argument("--budget", default="bench/perf_budget.json")
    args = parser.parse_args()

    try:
        with open(args.bench) as f:
            bench = json.load(f)
        with open(args.budget) as f:
            budget = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"perf_gate: cannot read inputs: {e}", file=sys.stderr)
        return 2

    if bench.get("schema") != "osim-bench-replay-v1":
        print(f"perf_gate: unexpected bench schema {bench.get('schema')!r}",
              file=sys.stderr)
        return 2
    if budget.get("schema") != "osim-perf-budget-v1":
        print(f"perf_gate: unexpected budget schema {budget.get('schema')!r}",
              file=sys.stderr)
        return 2

    paths = bench.get("paths", {})
    failures = []
    for name, floor in budget.get("floors", {}).items():
        record = paths.get(name)
        if record is None:
            failures.append(f"{name}: missing from bench record")
            continue
        if record.get("unit") != floor.get("unit"):
            failures.append(
                f"{name}: unit mismatch (bench {record.get('unit')!r} vs "
                f"budget {floor.get('unit')!r})")
            continue
        median = float(record.get("median", 0.0))
        minimum = float(floor["min_median"])
        verdict = "ok" if median >= minimum else "FAIL"
        print(f"perf_gate: {name:8s} {median:14.1f} {floor['unit']} "
              f"(floor {minimum:.1f}) {verdict}")
        if median < minimum:
            failures.append(
                f"{name}: median {median:.1f} {floor['unit']} below floor "
                f"{minimum:.1f}")

    if failures:
        for failure in failures:
            print(f"perf_gate: FAIL {failure}", file=sys.stderr)
        return 1
    print("perf_gate: all paths within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
