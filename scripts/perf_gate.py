#!/usr/bin/env python3
"""CI perf gate: compare osim_perf medians against the committed budget.

    perf_gate.py [--bench BENCH_replay.json] [--budget bench/perf_budget.json]

Reads the BENCH_replay.json produced by `osim_perf` and the floors in
bench/perf_budget.json. Every path in the budget must be present in the
bench record, report the same unit, and have a median at or above its
floor. Exit 0 when everything passes, 1 on any violation, 2 on malformed
input. Malformed covers everything short of a well-formed record: a
missing or truncated file, JSON that is not an object, version skew, a
budget with no floors, or non-numeric medians -- each exits 2 with a
one-line diagnosis, never a traceback, and never a silent pass. The
floors are intentionally generous (about 8x below a small reference
machine) -- this gate exists to catch order-of-magnitude regressions
such as an accidental O(n^2) in the replay loop, not to referee noisy
CI runners.
"""

import argparse
import json
import sys


class GateInputError(Exception):
    """Malformed bench or budget input; message is the one-line diagnosis."""


def load_object(path: str, what: str) -> dict:
    try:
        with open(path) as f:
            data = json.load(f)
    except OSError as e:
        raise GateInputError(f"cannot read {what} {path!r}: {e}") from e
    except json.JSONDecodeError as e:
        raise GateInputError(
            f"{what} {path!r} is not valid JSON ({e}); "
            "truncated write?") from e
    if not isinstance(data, dict):
        raise GateInputError(
            f"{what} {path!r}: expected a JSON object, got "
            f"{type(data).__name__}")
    return data


def check_schema(data: dict, path: str, what: str, expected: str) -> None:
    schema = data.get("schema")
    if schema != expected:
        raise GateInputError(
            f"{what} {path!r}: schema {schema!r} (expected {expected!r}); "
            "version skew between osim_perf and this gate?")


def as_number(value, what: str) -> float:
    # bool is an int subclass; a true/false median is still malformed.
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise GateInputError(f"{what}: expected a number, got {value!r}")
    return float(value)


def run_gate(args: argparse.Namespace) -> int:
    bench = load_object(args.bench, "bench record")
    budget = load_object(args.budget, "budget")
    check_schema(bench, args.bench, "bench record", "osim-bench-replay-v1")
    check_schema(budget, args.budget, "budget", "osim-perf-budget-v1")

    paths = bench.get("paths")
    if not isinstance(paths, dict):
        raise GateInputError(
            f"bench record {args.bench!r}: missing 'paths' object; "
            "truncated osim_perf run?")
    floors = budget.get("floors")
    if not isinstance(floors, dict) or not floors:
        # An empty budget must fail loudly: a gate with nothing to check
        # would otherwise pass forever.
        raise GateInputError(
            f"budget {args.budget!r}: no floors to enforce")

    failures = []
    for name, floor in floors.items():
        if not isinstance(floor, dict):
            raise GateInputError(
                f"budget floor {name!r}: expected an object, got "
                f"{floor!r}")
        if "min_median" not in floor or "unit" not in floor:
            raise GateInputError(
                f"budget floor {name!r}: needs 'min_median' and 'unit'")
        minimum = as_number(floor["min_median"],
                            f"budget floor {name!r} min_median")
        record = paths.get(name)
        if record is None:
            failures.append(f"{name}: missing from bench record")
            continue
        if not isinstance(record, dict):
            raise GateInputError(
                f"bench path {name!r}: expected an object, got {record!r}")
        if record.get("unit") != floor["unit"]:
            failures.append(
                f"{name}: unit mismatch (bench {record.get('unit')!r} vs "
                f"budget {floor['unit']!r})")
            continue
        median = as_number(record.get("median", 0.0),
                           f"bench path {name!r} median")
        verdict = "ok" if median >= minimum else "FAIL"
        print(f"perf_gate: {name:8s} {median:14.1f} {floor['unit']} "
              f"(floor {minimum:.1f}) {verdict}")
        if median < minimum:
            failures.append(
                f"{name}: median {median:.1f} {floor['unit']} below floor "
                f"{minimum:.1f}")

    if failures:
        for failure in failures:
            print(f"perf_gate: FAIL {failure}", file=sys.stderr)
        return 1
    print("perf_gate: all paths within budget")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench", default="BENCH_replay.json")
    parser.add_argument("--budget", default="bench/perf_budget.json")
    args = parser.parse_args()
    try:
        return run_gate(args)
    except GateInputError as e:
        print(f"perf_gate: {e}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
