#!/bin/sh
# End-to-end test of the file-based CLI pipeline:
#   osim_trace -> trace files -> osim_lint / osim_inspect (validate)
#   -> osim_replay
# Usage: pipeline_test.sh <build_dir>
set -e
BUILD="$1"
OUT="$(mktemp -d)"
trap 'rm -rf "$OUT"' EXIT

"$BUILD/tools/osim_trace" --app nas_cg --ranks 4 --iterations 2 \
    --out "$OUT/cg" --quiet --annotated --lint
"$BUILD/tools/osim_trace" --app pop --ranks 4 --iterations 2 \
    --out "$OUT/pop" --quiet --binary

for f in "$OUT"/cg.*.trace "$OUT"/pop.*.btrace; do
  "$BUILD/tools/osim_inspect" --trace "$f" --validate-only
  "$BUILD/tools/osim_lint" --trace "$f" --fail-on warning
done

# Semantic verification of the transformed traces against the original.
"$BUILD/tools/osim_lint" --original "$OUT/cg.original.trace" \
    --transformed "$OUT/cg.overlap_real.trace" --fail-on warning
"$BUILD/tools/osim_lint" --original "$OUT/pop.original.btrace" \
    --transformed "$OUT/pop.overlap_ideal.btrace" --fail-on warning

# Machine-readable lint: the JSON document carries the pinned schema and
# zero errors on app traces, any --jobs value is byte-identical to
# serial, and a warm --cache-dir rerun is served from the store with
# byte-identical output.
"$BUILD/tools/osim_lint" --trace "$OUT/cg.original.trace" --format json \
    > "$OUT/lint1.json"
grep -q '"schema":"osim.lint_report"' "$OUT/lint1.json"
grep -q '"errors":0' "$OUT/lint1.json"
"$BUILD/tools/osim_lint" --trace "$OUT/cg.original.trace" --format json \
    --jobs 4 > "$OUT/lint4.json"
cmp "$OUT/lint1.json" "$OUT/lint4.json"
LINTCACHE="$OUT/lintcache"
"$BUILD/tools/osim_lint" --trace "$OUT/cg.original.trace" --format json \
    --cache-dir "$LINTCACHE" > "$OUT/lint_cold.json" 2> "$OUT/lint_cold.err"
"$BUILD/tools/osim_lint" --trace "$OUT/cg.original.trace" --format json \
    --cache-dir "$LINTCACHE" > "$OUT/lint_warm.json" 2> "$OUT/lint_warm.err"
cmp "$OUT/lint_cold.json" "$OUT/lint_warm.json"
grep -q "served from" "$OUT/lint_warm.err"
if grep -q "served from" "$OUT/lint_cold.err"; then
  echo "cold lint claimed a cache hit" >&2
  exit 1
fi

# A semantically broken trace must be rejected with a matching diagnostic.
cat > "$OUT/broken.trace" <<TRC
#OSIM-TRACE v1
meta app broken
meta ranks 2
meta mips 1000
rank 0
s 1 7 64
rank 1
c 100
TRC
if "$BUILD/tools/osim_lint" --trace "$OUT/broken.trace" \
    > "$OUT/broken.txt" 2>&1; then
  echo "osim_lint accepted a broken trace" >&2
  exit 1
fi
grep -q "unmatched send" "$OUT/broken.txt"

# Platform file round trip through the replay tool.
cat > "$OUT/platform.cfg" <<CFG
nodes 4
bandwidth_mbps 250
latency_us 4
buses 6
CFG

"$BUILD/tools/osim_replay" --trace "$OUT/cg.original.trace" \
    --platform "$OUT/platform.cfg" --per-rank > "$OUT/original.txt"
"$BUILD/tools/osim_replay" --trace "$OUT/cg.overlap_real.trace" \
    --platform "$OUT/platform.cfg" --prv "$OUT/run" > "$OUT/overlap.txt"

grep -q "makespan:" "$OUT/original.txt"
grep -q "parallel efficiency" "$OUT/original.txt"
test -s "$OUT/run.prv"
test -s "$OUT/run.pcf"
test -s "$OUT/run.row"

# Structured run report: valid file with the expected schema marker and
# the wait-time attribution block.
"$BUILD/tools/osim_replay" --trace "$OUT/cg.original.trace" \
    --platform "$OUT/platform.cfg" --report "$OUT/report.json" \
    > "$OUT/report.txt"
test -s "$OUT/report.json"
grep -q '"schema":"osim.replay_report"' "$OUT/report.json"
grep -q '"wait_attribution"' "$OUT/report.json"
grep -q '"occupancy"' "$OUT/report.json"
# The run report embeds the trace's lint block next to the replay.
grep -q '"lint":{"schema":"osim.lint_report"' "$OUT/report.json"

# Binary traces replay too.
"$BUILD/tools/osim_replay" --trace "$OUT/pop.overlap_ideal.btrace" \
    --bandwidth 250 --latency 4 > "$OUT/pop.txt"
grep -q "makespan:" "$OUT/pop.txt"

# --- CLI error-path contract (common/exit_codes.hpp) ------------------------

# Unknown flag: usage error (exit 2) with a nearest-flag suggestion.
set +e
"$BUILD/tools/osim_replay" --tracee "$OUT/cg.original.trace" \
    > /dev/null 2> "$OUT/badflag.txt"
rc=$?
set -e
[ "$rc" -eq 2 ] || { echo "unknown flag: expected exit 2, got $rc" >&2; exit 1; }
grep -q "did you mean --trace?" "$OUT/badflag.txt"

# Malformed flag value is a usage error too.
set +e
"$BUILD/tools/osim_replay" --trace "$OUT/cg.original.trace" --buses lots \
    > /dev/null 2>&1
rc=$?
set -e
[ "$rc" -eq 2 ] || { echo "bad value: expected exit 2, got $rc" >&2; exit 1; }

# Truncated binary trace: strict read refuses with exit 3...
head -c 40 "$OUT/pop.original.btrace" > "$OUT/pop.cut.btrace"
set +e
"$BUILD/tools/osim_replay" --trace "$OUT/pop.cut.btrace" \
    > /dev/null 2> "$OUT/cut.txt"
rc=$?
set -e
[ "$rc" -eq 3 ] || { echo "truncated strict: expected exit 3, got $rc" >&2; exit 1; }
grep -q "recover" "$OUT/cut.txt"

# ...and osim_inspect --validate triages it as damaged-but-salvageable.
set +e
"$BUILD/tools/osim_inspect" --trace "$OUT/pop.cut.btrace" --validate \
    > "$OUT/triage.txt" 2>&1
rc=$?
set -e
[ "$rc" -eq 4 ] || { echo "inspect --validate: expected exit 4, got $rc" >&2; exit 1; }
grep -q "trace damage report" "$OUT/triage.txt"

# A damaged footer (flipped CRC byte) still salvages every record, so
# --recover replays it and reports the damage through exit 4.
cp "$OUT/pop.original.btrace" "$OUT/pop.crc.btrace"
python3 - "$OUT/pop.crc.btrace" <<'PY'
import sys
path = sys.argv[1]
data = bytearray(open(path, 'rb').read())
data[-1] ^= 0x40
open(path, 'wb').write(data)
PY
set +e
"$BUILD/tools/osim_replay" --trace "$OUT/pop.crc.btrace" --recover \
    > "$OUT/salvaged.txt" 2>&1
rc=$?
set -e
[ "$rc" -eq 4 ] || { echo "salvaged replay: expected exit 4, got $rc" >&2; exit 1; }
grep -q "makespan:" "$OUT/salvaged.txt"

# Garbage input is unreadable even in recover mode: exit 3.
printf 'not a trace at all\n' > "$OUT/garbage.trace"
set +e
"$BUILD/tools/osim_replay" --trace "$OUT/garbage.trace" --recover \
    > /dev/null 2>&1
rc=$?
set -e
[ "$rc" -eq 3 ] || { echo "garbage recover: expected exit 3, got $rc" >&2; exit 1; }

# Fault injection smoke: counters reach the run report, and faults off
# means no fault section.
"$BUILD/tools/osim_replay" --trace "$OUT/cg.original.trace" \
    --platform "$OUT/platform.cfg" \
    --faults 'seed=7;loss=0.05,timeout=20us' \
    --report "$OUT/faulty.json" > "$OUT/faulty.txt"
grep -q "faults: seed=7" "$OUT/faulty.txt"
grep -q '"faults"' "$OUT/faulty.json"
grep -q '"retransmits"' "$OUT/faulty.json"
if grep -q '"faults"' "$OUT/report.json"; then
  echo "fault-free report contains a fault section" >&2
  exit 1
fi

# --- persistent scenario store (osim_cache, --cache-dir) --------------------

# Cold replay populates the store; a warm rerun of the identical scenario
# is served from the disk tier with bit-identical stdout.
CACHE="$OUT/cache"
"$BUILD/tools/osim_replay" --trace "$OUT/cg.original.trace" \
    --platform "$OUT/platform.cfg" --cache-dir "$CACHE" \
    > "$OUT/cache_cold.txt" 2> "$OUT/cache_cold.err"
"$BUILD/tools/osim_replay" --trace "$OUT/cg.original.trace" \
    --platform "$OUT/platform.cfg" --cache-dir "$CACHE" \
    > "$OUT/cache_warm.txt" 2> "$OUT/cache_warm.err"
cmp "$OUT/cache_cold.txt" "$OUT/cache_warm.txt"
grep -q "served from" "$OUT/cache_warm.err"
if grep -q "served from" "$OUT/cache_cold.err"; then
  echo "cold replay claimed a cache hit" >&2
  exit 1
fi

# osim_inspect --fingerprint prints the scenario's content address and
# finds the object the warm replay was served from.
"$BUILD/tools/osim_inspect" --trace "$OUT/cg.original.trace" --fingerprint \
    --platform "$OUT/platform.cfg" --cache-dir "$CACHE" > "$OUT/fp.txt"
grep -q "(present)" "$OUT/fp.txt"

# Warm/cold bench round trip: the second run reports every scenario from
# the disk tier, with makespans bit-identical to the cold run.
"$BUILD/bench/fig6a_speedup" --ranks 4 --iterations 2 --apps nas_cg \
    --out-dir "$OUT/bench" --cache-dir "$CACHE" \
    --study-report "$OUT/study_cold.json" > /dev/null 2>&1
"$BUILD/bench/fig6a_speedup" --ranks 4 --iterations 2 --apps nas_cg \
    --out-dir "$OUT/bench" --cache-dir "$CACHE" \
    --study-report "$OUT/study_warm.json" > /dev/null 2>&1
grep -q '"misses":0' "$OUT/study_warm.json"
grep -q '"tier":"disk"' "$OUT/study_warm.json"
python3 - "$OUT/study_cold.json" "$OUT/study_warm.json" <<'PY'
import json, sys
cold, warm = (json.load(open(p)) for p in sys.argv[1:3])
key = lambda s: (s['label'], s['fingerprint'])
cm = {key(s): s['makespan_s'] for s in cold['scenarios']}
wm = {key(s): s['makespan_s'] for s in warm['scenarios']}
assert cm == wm, 'warm makespans differ from cold'
assert all(s['tier'] == 'disk' for s in warm['scenarios'])
labels = [s['label'] for s in warm['scenarios']]
assert labels == sorted(labels), 'scenarios not sorted by label'
PY

# The populated store verifies clean, survives a gc to a tight budget, and
# still verifies clean afterwards.
"$BUILD/tools/osim_cache" verify --cache-dir "$CACHE" > /dev/null
"$BUILD/tools/osim_cache" stats --cache-dir "$CACHE" | grep -q "objects:"
"$BUILD/tools/osim_cache" gc --cache-dir "$CACHE" --max-bytes 1024 \
    > /dev/null
"$BUILD/tools/osim_cache" verify --cache-dir "$CACHE" > /dev/null

# Offline transformation from the annotated trace reproduces the
# tracer-emitted original trace byte for byte.
"$BUILD/tools/osim_overlap" --annotated "$OUT/cg.ann" --mode original \
    --out "$OUT/cg.re.trace"
cmp "$OUT/cg.re.trace" "$OUT/cg.original.trace"
"$BUILD/tools/osim_overlap" --annotated "$OUT/cg.ann" --mode overlap \
    --chunks 8 --pattern ideal --out "$OUT/cg.i8.trace"
"$BUILD/tools/osim_inspect" --trace "$OUT/cg.i8.trace" --validate-only
"$BUILD/tools/osim_replay" --trace "$OUT/cg.i8.trace" --buses 6 \
    --critical-path | grep -q "critical path"

echo "pipeline OK"
