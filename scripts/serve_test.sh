#!/bin/sh
# End-to-end contract of the analysis service at the CLI:
#   1. submit --wait --report fetches a run report byte-identical to what
#      `osim_replay --report` writes for the same trace and flags;
#   2. a resubmit of the same scenario is served without a replay, and a
#      second client's concurrent submit shares the first's replay;
#   3. admission control refuses submits with exit 6 when the queue is
#      full, and bad requests (missing trace) exit 2;
#   4. poll/fetch/cancel/stats round-trip against live tickets;
#   5. a SIGKILLed worker (via OSIM_CRASH_POINT) is reaped and its job
#      retried — the client still gets its report;
#   6. a --journal server restarted on the same store answers recorded
#      scenarios from disk without recomputing;
#   7. SIGTERM drains the server with exit 5; the shutdown RPC exits 0.
# Usage: serve_test.sh <build_dir>
set -e
BUILD="$1"
OUT="$(mktemp -d)"
SERVE_PID=""
cleanup() {
  [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2> /dev/null
  wait 2> /dev/null
  rm -rf "$OUT"
}
trap cleanup EXIT
unset OSIM_CACHE_DIR
unset OSIM_CRASH_POINT

SERVE="$BUILD/tools/osim_serve"
CLIENT="$BUILD/tools/osim_client"
SOCK="$OUT/osim.sock"

"$BUILD/tools/osim_trace" --app nas_cg --ranks 4 --iterations 2 \
    --out "$OUT/cg" --quiet

# --- 1. byte-identity: service report == batch report ------------------------

"$SERVE" --socket "$SOCK" --workers 2 --cache-dir "$OUT/cache" --journal \
    2> "$OUT/serve1.log" &
SERVE_PID=$!

"$CLIENT" submit --socket "$SOCK" --trace "$OUT/cg.original.trace" \
    --wait --report "$OUT/via_serve.json" > "$OUT/submit.txt"
grep -q "fresh" "$OUT/submit.txt"
TICKET="$(sed -n 's/^ticket \([0-9a-f]\{32\}\) fresh$/\1/p' "$OUT/submit.txt" | head -1)"
[ -n "$TICKET" ] || { echo "no ticket in submit output" >&2; exit 1; }

"$BUILD/tools/osim_replay" --trace "$OUT/cg.original.trace" \
    --report "$OUT/via_batch.json" > /dev/null
cmp "$OUT/via_serve.json" "$OUT/via_batch.json"

# --- 2. dedupe: the same scenario is answered without a new replay -----------

"$CLIENT" submit --socket "$SOCK" --trace "$OUT/cg.original.trace" \
    > "$OUT/resubmit.txt"
grep -q "^ticket $TICKET served$" "$OUT/resubmit.txt"

# Two concurrent clients over a fresh scenario: one fresh, one shared or
# served — never two replays (the stats check below pins the count).
"$CLIENT" submit --socket "$SOCK" --trace "$OUT/cg.overlap_real.trace" \
    --wait > "$OUT/c1.txt" &
C1=$!
"$CLIENT" submit --socket "$SOCK" --trace "$OUT/cg.overlap_real.trace" \
    --wait > "$OUT/c2.txt" &
C2=$!
wait "$C1"; wait "$C2"
grep -q "done" "$OUT/c1.txt"
grep -q "done" "$OUT/c2.txt"
FRESH_COUNT="$(cat "$OUT/c1.txt" "$OUT/c2.txt" | grep -c " fresh$" || true)"
[ "$FRESH_COUNT" -le 1 ] || { echo "concurrent submits both replayed" >&2; exit 1; }

# --- 3. poll / fetch / cancel / stats ---------------------------------------

"$CLIENT" poll --socket "$SOCK" --ticket "$TICKET" | grep -q "done"
"$CLIENT" fetch --socket "$SOCK" --ticket "$TICKET" \
    | grep -q '"schema":"osim.replay_report"'
"$CLIENT" cancel --socket "$SOCK" --ticket "$TICKET" \
    | grep -q "cancelled"
# Cancel of a finished scenario is a detach; the report stays available.
"$CLIENT" fetch --socket "$SOCK" --ticket "$TICKET" > /dev/null

"$CLIENT" stats --socket "$SOCK" > "$OUT/stats.json"
grep -q '"schema":"osim.serve_stats"' "$OUT/stats.json"
grep -q '"replays_completed":2' "$OUT/stats.json"
grep -q '"root":' "$OUT/stats.json"  # store block present

# osim_cache reads the same store and emits the same stats body.
"$BUILD/tools/osim_cache" stats --cache-dir "$OUT/cache" --json \
    | grep -q '"schema":"osim.cache_stats"'

# Unknown tickets are refused (exit 1), bad flags are usage errors (2).
set +e
"$CLIENT" fetch --socket "$SOCK" \
    --ticket 00000000000000000000000000000000 > /dev/null 2>&1
[ $? -eq 1 ] || { echo "unknown ticket: expected exit 1" >&2; exit 1; }
"$CLIENT" fetch --socket "$SOCK" --ticket nope > /dev/null 2>&1
[ $? -eq 2 ] || { echo "bad ticket: expected exit 2" >&2; exit 1; }
"$CLIENT" submit --socket "$SOCK" --trace "$OUT/missing.trace" \
    > /dev/null 2>&1
[ $? -eq 2 ] || { echo "missing trace: expected exit 2" >&2; exit 1; }
set -e

# --- 7a. SIGTERM drains with exit 5 -----------------------------------------

kill -TERM "$SERVE_PID"
set +e
wait "$SERVE_PID"
rc=$?
set -e
SERVE_PID=""
[ "$rc" -eq 5 ] || { echo "SIGTERM drain: expected exit 5, got $rc" >&2; exit 1; }
[ ! -e "$SOCK" ] || { echo "drained server left its socket" >&2; exit 1; }

# --- 6. restart on the same journaled store: served from disk ---------------

"$SERVE" --socket "$SOCK" --workers 2 --cache-dir "$OUT/cache" --journal \
    2> "$OUT/serve2.log" &
SERVE_PID=$!
"$CLIENT" submit --socket "$SOCK" --trace "$OUT/cg.original.trace" \
    --wait --report "$OUT/via_restart.json" > "$OUT/restart.txt"
grep -q "^ticket $TICKET served$" "$OUT/restart.txt"
cmp "$OUT/via_restart.json" "$OUT/via_batch.json"
"$CLIENT" stats --socket "$SOCK" > "$OUT/stats2.json"
grep -q '"replays_completed":0' "$OUT/stats2.json"
grep -q '"journal_hits":1' "$OUT/stats2.json"

# --- 5. a SIGKILLed worker is retried; the client still gets its report -----

# The crash point fires on the second job a worker process runs: with one
# worker and a batch of two, job 2 kills the worker mid-assignment and
# must come back on the respawned one.
"$CLIENT" shutdown --socket "$SOCK" > /dev/null
wait "$SERVE_PID" || true
SERVE_PID=""
OSIM_CRASH_POINT=serve.worker.job:2 "$SERVE" --socket "$SOCK" \
    --workers 1 --max-batch 2 2> "$OUT/serve3.log" &
SERVE_PID=$!
"$CLIENT" study --socket "$SOCK" --trace "$OUT/cg.overlap_ideal.trace" \
    --bandwidths 125,500 --wait > "$OUT/crash.txt"
[ "$(grep -c " done$" "$OUT/crash.txt")" -eq 2 ] || {
  echo "worker-death study did not finish both scenarios" >&2; exit 1; }
"$CLIENT" stats --socket "$SOCK" | grep -q '"deaths":1'

# --- 4. admission control: full queue refuses with exit 6 --------------------

"$CLIENT" shutdown --socket "$SOCK" > /dev/null
set +e
wait "$SERVE_PID"
rc=$?
set -e
SERVE_PID=""
[ "$rc" -eq 0 ] || { echo "shutdown RPC: expected exit 0, got $rc" >&2; exit 1; }

"$SERVE" --socket "$SOCK" --workers 1 --max-queue 0 \
    2> "$OUT/serve4.log" &
SERVE_PID=$!
set +e
"$CLIENT" submit --socket "$SOCK" --trace "$OUT/cg.original.trace" \
    > /dev/null 2> "$OUT/busy.txt"
rc=$?
set -e
[ "$rc" -eq 6 ] || { echo "busy reject: expected exit 6, got $rc" >&2; exit 1; }
grep -q "busy" "$OUT/busy.txt"

# --- 7b. the shutdown RPC exits 0 -------------------------------------------

"$CLIENT" shutdown --socket "$SOCK" > /dev/null
set +e
wait "$SERVE_PID"
rc=$?
set -e
SERVE_PID=""
[ "$rc" -eq 0 ] || { echo "final shutdown: expected exit 0, got $rc" >&2; exit 1; }

echo "serve OK"
