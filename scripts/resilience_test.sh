#!/bin/sh
# Resilience contract of the study supervision layer, exercised end to end
# at the CLI:
#   1. a journaled sweep killed -9 mid-flight (via OSIM_CRASH_POINT) and
#      then --resume'd produces a canonical study report bit-identical to
#      an uninterrupted run, with the skipped work served from the journal;
#   2. --scenario-timeout records the stopped scenario and the sweep
#      completes normally (exit 0);
#   3. --study-deadline drains the sweep, flushes a partial report and
#      exits 5;
#   4. SIGINT does the same through the graceful-shutdown handler;
#   5. osim_cache lists journals and gc evicts only finished studies.
# Usage: resilience_test.sh <build_dir>
set -e
BUILD="$1"
OUT="$(mktemp -d)"
trap 'rm -rf "$OUT"' EXIT
unset OSIM_CACHE_DIR
unset OSIM_CRASH_POINT

BENCH="$BUILD/bench/fig6a_speedup"
SWEEP="--ranks 4 --iterations 2 --apps nas_cg --out-dir $OUT/bench"

# --- 1a. reference: an uninterrupted journaled sweep ------------------------

"$BENCH" $SWEEP --cache-dir "$OUT/ref_cache" --journal \
    --study-report "$OUT/ref.json" --canonical-report > /dev/null 2>&1
grep -q '"schema":"osim.study_report.canonical"' "$OUT/ref.json"
grep -q '"status":"complete"' "$OUT/ref.json"

# The finished study left a complete journal; stats sees it and gc evicts
# it (while keeping the scenario objects within budget).
"$BUILD/tools/osim_cache" stats --cache-dir "$OUT/ref_cache" --journals \
    > "$OUT/ref_stats.txt"
grep -q "journals: 1 (1 complete, 0 in progress)" "$OUT/ref_stats.txt"
"$BUILD/tools/osim_cache" gc --cache-dir "$OUT/ref_cache" \
    --max-bytes 1073741824 > "$OUT/ref_gc.txt"
grep -q "removed 1 finished-study journal" "$OUT/ref_gc.txt"
"$BUILD/tools/osim_cache" stats --cache-dir "$OUT/ref_cache" \
    | grep -q "journals: 0"

# --- 1b. kill -9 mid-sweep, then --resume -----------------------------------

# The crash point SIGKILLs the bench at its second journal append — after
# one scenario is durably recorded, before the sweep finishes.
set +e
OSIM_CRASH_POINT=journal.append:2 "$BENCH" $SWEEP \
    --cache-dir "$OUT/kill_cache" --journal > /dev/null 2>&1
rc=$?
set -e
[ "$rc" -eq 137 ] || { echo "crash run: expected SIGKILL (137), got $rc" >&2; exit 1; }

# The torn run left an in-progress journal...
"$BUILD/tools/osim_cache" stats --cache-dir "$OUT/kill_cache" --journals \
    > "$OUT/kill_stats.txt"
grep -q "journals: 1 (0 complete, 1 in progress)" "$OUT/kill_stats.txt"
# ...which gc must NOT evict (a --resume still needs it).
"$BUILD/tools/osim_cache" gc --cache-dir "$OUT/kill_cache" \
    --max-bytes 1073741824 > /dev/null
"$BUILD/tools/osim_cache" stats --cache-dir "$OUT/kill_cache" \
    | grep -q "journals: 1"

# Resume: the sweep completes and the canonical report is bit-identical
# to the uninterrupted reference.
"$BENCH" $SWEEP --cache-dir "$OUT/kill_cache" --resume \
    --study-report "$OUT/resumed.json" --canonical-report > /dev/null 2>&1
cmp "$OUT/ref.json" "$OUT/resumed.json"
# skipped-resume is a journal-only marker; resumed results read "ok".
if grep -q "skipped-resume" "$OUT/resumed.json"; then
  echo "resumed report leaked a skipped-resume status" >&2
  exit 1
fi

# A second resume serves every scenario from the journal tier.
"$BENCH" $SWEEP --cache-dir "$OUT/kill_cache" --resume \
    --study-report "$OUT/resumed2.json" > /dev/null 2>&1
grep -q '"tier":"journal"' "$OUT/resumed2.json"
grep -q '"journal_hits":3' "$OUT/resumed2.json"

# --- 2. per-scenario timeout: sweep completes, scenario reported ------------

"$BENCH" $SWEEP --scenario-timeout 0.0000001 \
    --study-report "$OUT/timeout.json" > /dev/null 2>&1
grep -q '"status":"complete"' "$OUT/timeout.json"
grep -q '"status":"timeout"' "$OUT/timeout.json"

# The standalone replay tool honors the same budget with exit 5.
"$BUILD/tools/osim_trace" --app nas_cg --ranks 4 --iterations 2 \
    --out "$OUT/cg" --quiet
set +e
"$BUILD/tools/osim_replay" --trace "$OUT/cg.original.trace" \
    --scenario-timeout 0.0000001 > /dev/null 2> "$OUT/replay_timeout.txt"
rc=$?
set -e
[ "$rc" -eq 5 ] || { echo "replay timeout: expected exit 5, got $rc" >&2; exit 1; }
grep -q "interrupted: scenario-timeout" "$OUT/replay_timeout.txt"

# --- 3. study deadline: partial report flushed, exit 5 ----------------------

set +e
"$BENCH" $SWEEP --study-deadline 0.0000001 \
    --study-report "$OUT/deadline.json" > /dev/null 2> "$OUT/deadline.err"
rc=$?
set -e
[ "$rc" -eq 5 ] || { echo "deadline run: expected exit 5, got $rc" >&2; exit 1; }
grep -q '"status":"interrupted"' "$OUT/deadline.json"
grep -q '"status":"cancelled"' "$OUT/deadline.json"
grep -q "sweep interrupted" "$OUT/deadline.err"

# --- 4. SIGINT drains the sweep and flushes the report ----------------------

# A deliberately long sweep (any supervision flag installs the handlers);
# the signal lands mid-run and the bench must still exit 5 with a report.
"$BENCH" --ranks 32 --iterations 64 --scale 2 --out-dir "$OUT/bench" \
    --scenario-timeout 3600 --study-report "$OUT/sigint.json" \
    > /dev/null 2>&1 &
pid=$!
sleep 1
kill -INT "$pid" 2> /dev/null
set +e
wait "$pid"
rc=$?
set -e
[ "$rc" -eq 5 ] || { echo "SIGINT run: expected exit 5, got $rc" >&2; exit 1; }
test -s "$OUT/sigint.json"
grep -q '"status":"interrupted"' "$OUT/sigint.json"

echo "resilience OK"
