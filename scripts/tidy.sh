#!/bin/sh
# Runs clang-tidy (checks from .clang-tidy) over the library, tool, test and
# example sources using the compile commands exported by CMake. Skips with a
# notice when clang-tidy is not installed, so the script is safe to call
# from CI images without LLVM.
#
#   scripts/tidy.sh [build-dir]
set -e
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build}"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "tidy: clang-tidy not found on PATH; skipping" >&2
  exit 0
fi
if [ ! -f "$BUILD/compile_commands.json" ]; then
  echo "tidy: $BUILD/compile_commands.json missing; configure first:" >&2
  echo "  cmake -B $BUILD -S $ROOT" >&2
  exit 2
fi

FILES="$(find "$ROOT/src" "$ROOT/tools" "$ROOT/tests" "$ROOT/examples" \
              -name '*.cpp' | sort)"
# shellcheck disable=SC2086 — word splitting over the file list is intended.
clang-tidy -p "$BUILD" --quiet $FILES
echo "tidy OK"
