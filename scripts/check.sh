#!/bin/sh
# Static checks plus a sanitizer build-and-test pass:
#
#   1. layering grep: nothing in bench/ or src/analysis/ may call
#      dimemas::replay directly — every replay goes through the
#      pipeline::ReplayContext / Study API;
#   2. full build under AddressSanitizer + UndefinedBehaviorSanitizer (or
#      ThreadSanitizer with 'thread', or standalone UBSan with 'undefined'
#      as the second argument) and the full test suite;
#   3. a dedicated ThreadSanitizer pass over pipeline_test, the one
#      genuinely multithreaded consumer besides mpisim (skipped in
#      'undefined' mode, which exists to catch UB that ASan's presence can
#      mask — the tsan pass belongs to the other modes).
#
#   scripts/check.sh [build-dir] [address|thread|undefined]
set -e
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build-asan}"
MODE="${2:-address}"

case "$MODE" in
  address)   SANITIZE="address;undefined" ;;
  thread)    SANITIZE="thread" ;;
  undefined) SANITIZE="undefined" ;;
  *) echo "usage: $0 [build-dir] [address|thread|undefined]" >&2; exit 2 ;;
esac

# Layering: benches and analysis must use the pipeline API, never the raw
# replay entry point (see DESIGN.md "API conventions").
if grep -rn --include='*.cpp' --include='*.hpp' -F 'dimemas::replay(' \
     "$ROOT/bench" "$ROOT/src/analysis"; then
  echo "error: direct dimemas::replay call in bench/ or src/analysis/;" \
       "route it through pipeline::ReplayContext / Study" >&2
  exit 1
fi
if grep -rn --include='*.cpp' --include='*.hpp' -F 'dimemas/replay.hpp' \
     "$ROOT/bench" "$ROOT/src/analysis"; then
  echo "error: dimemas/replay.hpp included from bench/ or src/analysis/" >&2
  exit 1
fi
echo "layering OK (no direct dimemas::replay in bench/ or src/analysis/)"

# The deprecated raw trace/platform analysis shims were removed once the
# Study/ReplayContext API landed; they must not come back.
if grep -rn --include='*.cpp' --include='*.hpp' -F '[[deprecated' \
     "$ROOT/src/analysis"; then
  echo "error: [[deprecated]] shim under src/analysis/; the raw" \
       "trace/platform entry points were removed — add the Study/" \
       "ReplayContext overload directly instead" >&2
  exit 1
fi
echo "shims OK (no [[deprecated]] under src/analysis/)"

cmake -B "$BUILD" -S "$ROOT" -DOSIM_SANITIZE="$SANITIZE" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD" -j "$(nproc)"
ctest --test-dir "$BUILD" --output-on-failure -j "$(nproc)"

# ThreadSanitizer over the thread-pool engine. 'undefined' mode skips
# this: it is a pure-UBSan lane and the tsan pass already runs in the
# 'address' and 'thread' lanes.
if [ "$MODE" = undefined ]; then
  echo "check OK ($SANITIZE)"
  exit 0
fi
if [ "$MODE" = thread ]; then
  TSAN_BUILD="$BUILD"
else
  TSAN_BUILD="$ROOT/build-tsan"
  cmake -B "$TSAN_BUILD" -S "$ROOT" -DOSIM_SANITIZE=thread \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$TSAN_BUILD" -j "$(nproc)" --target pipeline_test
fi
ctest --test-dir "$TSAN_BUILD" --output-on-failure -R '^pipeline_test$'

echo "check OK ($SANITIZE + tsan:pipeline_test)"
