#!/bin/sh
# Builds the whole project under AddressSanitizer + UndefinedBehaviorSanitizer
# and runs the full test suite. A second argument of 'thread' selects
# ThreadSanitizer instead.
#
#   scripts/check.sh [build-dir] [address|thread]
set -e
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$ROOT/build-asan}"
MODE="${2:-address}"

case "$MODE" in
  address) SANITIZE="address;undefined" ;;
  thread)  SANITIZE="thread" ;;
  *) echo "usage: $0 [build-dir] [address|thread]" >&2; exit 2 ;;
esac

cmake -B "$BUILD" -S "$ROOT" -DOSIM_SANITIZE="$SANITIZE" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD" -j "$(nproc)"
ctest --test-dir "$BUILD" --output-on-failure
echo "check OK ($SANITIZE)"
